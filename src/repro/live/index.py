"""The live index: base segment + delta + tombstones + WAL, LSM-style.

:class:`LiveIndex` makes the frozen :class:`~repro.core.table.SignatureTable`
mutable without giving up its query algorithm or its results:

* **Inserts** go to the in-memory :class:`~repro.live.delta.DeltaIndex`
  (grouped by supercoordinate under the base's scheme) after being made
  durable in the :class:`~repro.live.wal.WriteAheadLog`.
* **Deletes** address *logical* tids — positions in the logically-current
  database (live base rows in tid order, then live delta rows in
  insertion order).  A base delete adds a tombstone; a delta delete
  drops the row directly.
* **Queries** fan out: the base searcher answers with ``k`` widened by
  the tombstone count (so dropping dead rows cannot starve the result),
  the delta snapshot answers its own top-k, candidates are merged under
  the deterministic ``(-similarity, logical_tid)`` order.  Exact results
  are byte-identical to a fresh :meth:`SignatureTable.build
  <repro.core.table.SignatureTable.build>` over the logical database —
  the differential oracle in ``tests/live`` pins it, including across
  crashes.
* **Compaction** rebuilds the base from the logical database, writes an
  atomic checkpoint (``.npz`` snapshot files + manifest rename), resets
  the WAL, and swaps segments under a short lock — readers are never
  blocked by the rebuild, writers wait (single-writer design).
* **Recovery** (:meth:`LiveIndex.recover`) loads the newest checkpoint
  and replays the WAL tail past its sequence number; a torn tail from a
  crash is truncated away.

Concurrency model: one re-entrant *mutation lock* serialises
insert/delete/compact/checkpoint; a short *swap lock* guards the
segment references and is held only to snapshot state (readers) or to
swap it (compaction) — never across I/O or a rebuild.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.advisor import DriftReport, activation_drift
from repro.core.search import Neighbor, SearchStats, SignatureTableSearcher
from repro.core.signature import SignatureScheme
from repro.core.similarity import SimilarityFunction
from repro.core.table import SignatureTable
from repro.data.transaction import TransactionDatabase, as_item_array
from repro.live.dedupe import DedupeTable
from repro.live.delta import DeltaIndex
from repro.live.wal import WriteAheadLog, replay_wal
from repro.obs.trace import span
from repro.utils.validation import check_fraction, check_positive

#: Manifest schema version for the index directory.
MANIFEST_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_WAL_FILE = "wal.log"


@dataclass(frozen=True)
class CompactionPolicy:
    """When the delta or the tombstones justify folding into the base.

    ``max_delta_fraction`` triggers on ``len(delta) / base_total`` and
    ``max_tombstone_fraction`` on the fraction of base rows tombstoned;
    ``min_delta_rows`` keeps tiny indexes from compacting on every
    insert.
    """

    max_delta_fraction: float = 0.10
    max_tombstone_fraction: float = 0.20
    min_delta_rows: int = 64

    def __post_init__(self) -> None:
        check_fraction(self.max_delta_fraction, "max_delta_fraction")
        check_fraction(self.max_tombstone_fraction, "max_tombstone_fraction")
        check_positive(self.min_delta_rows, "min_delta_rows")

    def should_compact(
        self, delta_rows: int, tombstones: int, base_total: int
    ) -> bool:
        """Whether the current live-index shape crosses a threshold."""
        base = max(base_total, 1)
        if (
            delta_rows >= self.min_delta_rows
            and delta_rows / base >= self.max_delta_fraction
        ):
            return True
        return tombstones / base >= self.max_tombstone_fraction


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction did."""

    merged_inserts: int
    dropped_tombstones: int
    new_num_transactions: int
    applied_seqno: int
    duration_seconds: float
    repartitioned: bool


class _ReadState:
    """Everything one query needs, snapshotted under the swap lock."""

    __slots__ = (
        "searcher", "base_live", "num_base_live", "num_dead", "delta",
    )

    def __init__(self, searcher, base_live, delta) -> None:
        self.searcher = searcher
        self.base_live = base_live
        self.num_base_live = int(base_live.sum())
        self.num_dead = int(base_live.size - self.num_base_live)
        self.delta = delta


def _fsync_file(path: str) -> None:
    """Flush a freshly written file to the platter."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    """Best-effort directory fsync (makes renames durable on POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class LiveIndex:
    """A mutable, durable index over one immutable base segment.

    Construct with :meth:`create` (new directory) or :meth:`recover`
    (existing directory, possibly after a crash); the raw constructor is
    internal.  Thread-safe: any number of concurrent readers, one
    writer at a time.
    """

    def __init__(
        self,
        path: str,
        table: SignatureTable,
        db: TransactionDatabase,
        *,
        base_files: Tuple[str, str],
        applied_seqno: int,
        fsync_interval: int = 1,
        policy: Optional[CompactionPolicy] = None,
        metrics_registry=None,
        injector=None,
        dedupe: Optional[DedupeTable] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.policy = policy if policy is not None else CompactionPolicy()
        self._scheme = table.scheme
        self._page_size = table.store.page_size
        self._base_table = table
        self._base_db = db
        self._base_searcher = SignatureTableSearcher(table, db)
        self._base_live = np.ones(len(db), dtype=bool)
        self._base_files = base_files
        self._delta = DeltaIndex(table.scheme)
        # Sketch tier (repro.sketch): when the base table carries a sketch
        # column, delta rows are signed on insert with the same hasher.
        # ``_delta_sigs`` is indexed by delta *position* (stable across
        # removes — DeltaIndex never renumbers), so signatures stay
        # aligned with their rows for the whole delta lifetime.
        self._sketch_hasher = (
            table.sketch.hasher if table.sketch is not None else None
        )
        self._delta_sigs: List[np.ndarray] = []
        self._injector = injector
        #: Idempotency-key table: a keyed mutation seen twice answers
        #: from here instead of re-applying (see :mod:`repro.live.dedupe`).
        self.dedupe = dedupe if dedupe is not None else DedupeTable()
        self._wal = WriteAheadLog(
            os.path.join(self.path, _WAL_FILE),
            fsync_interval=fsync_interval,
            injector=injector,
        )
        self._applied_seqno = int(applied_seqno)
        self._next_seqno = int(applied_seqno) + 1
        self._mutation_lock = threading.RLock()
        self._swap_lock = threading.Lock()
        self._closed = False
        self._base_fractions: Optional[np.ndarray] = None
        self.compactions = 0
        self._metrics = None
        if metrics_registry is not None:
            self._bind_metrics(metrics_registry)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path,
        db: TransactionDatabase,
        scheme: Optional[SignatureScheme] = None,
        table: Optional[SignatureTable] = None,
        page_size: int = 64,
        **options,
    ) -> "LiveIndex":
        """Initialise a new index directory over a base database.

        Exactly one of ``scheme`` (the table is built here) or ``table``
        (a prebuilt base) must be given.  Writes the initial checkpoint
        (base snapshot + manifest) and an empty WAL, then returns the
        open index.

        ``sketch=True`` (or a dict of :meth:`SketchIndex.build
        <repro.sketch.SketchIndex.build>` keyword arguments) attaches a
        sketch column to the base table before the initial snapshot,
        enabling ``candidate_tier="lsh"`` queries; the sketch persists
        with the base table and survives recovery.
        """
        if (scheme is None) == (table is None):
            raise ValueError("provide exactly one of scheme or table")
        sketch_option = options.pop("sketch", None)
        if table is None:
            table = SignatureTable.build(db, scheme, page_size=page_size)
        if sketch_option and table.sketch is None:
            from repro.sketch import SketchIndex

            params = {} if sketch_option is True else dict(sketch_option)
            table.attach_sketch(SketchIndex.build(db, **params))
        path = os.fspath(path)
        os.makedirs(path, exist_ok=True)
        if os.path.exists(os.path.join(path, _MANIFEST)):
            raise ValueError(
                f"{path!r} already holds a live index; use LiveIndex.recover"
            )
        base_files = cls._write_base_snapshot(path, 0, table, db)
        cls._commit_manifest(
            path,
            applied_seqno=0,
            base_files=base_files,
            page_size=table.store.page_size,
        )
        wal_path = os.path.join(path, _WAL_FILE)
        with open(wal_path, "wb"):
            pass
        return cls(
            path,
            table,
            db,
            base_files=base_files,
            applied_seqno=0,
            **options,
        )

    @classmethod
    def recover(cls, path, **options) -> "LiveIndex":
        """Open an index directory, replaying the WAL tail after a crash.

        Loads the checkpointed base (and any checkpointed delta /
        tombstones), then re-applies every WAL record with a sequence
        number past the checkpoint.  A torn record at the WAL tail —
        the signature of a crash mid-append — ends the replay cleanly
        and is truncated away; the reconstructed state is exactly the
        acknowledged-mutation state at the moment of the crash.
        """
        path = os.fspath(path)
        manifest_path = os.path.join(path, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(f"no live index at {path!r} ({_MANIFEST} missing)")
        started_s = time.perf_counter()
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        version = int(manifest.get("format_version", 0))
        if version > MANIFEST_FORMAT_VERSION:
            raise ValueError(
                f"index manifest has format_version {version}, but this build "
                f"reads at most {MANIFEST_FORMAT_VERSION}"
            )
        table = SignatureTable.load(os.path.join(path, manifest["base_table"]))
        db = TransactionDatabase.load(os.path.join(path, manifest["base_db"]))
        applied = int(manifest["applied_seqno"])
        index = cls(
            path,
            table,
            db,
            base_files=(manifest["base_table"], manifest["base_db"]),
            applied_seqno=applied,
            **options,
        )
        if manifest.get("tombstones"):
            dead = np.load(os.path.join(path, manifest["tombstones"]))["tids"]
            for tid in dead.tolist():
                index._base_live[int(tid)] = False
        if manifest.get("delta_db"):
            delta_db = TransactionDatabase.load(
                os.path.join(path, manifest["delta_db"])
            )
            for tid in range(len(delta_db)):
                index._delta_insert(delta_db.items_of(tid))
        if manifest.get("dedupe"):
            # Checkpointed idempotency keys sit under any keyed WAL
            # records replayed below, so a retransmitted mutation from
            # before the checkpoint still answers from the table.
            with open(
                os.path.join(path, manifest["dedupe"]), "r", encoding="utf-8"
            ) as handle:
                index.dedupe = DedupeTable.from_json(json.load(handle))
        records, valid_bytes = replay_wal(index._wal.path)
        replayed = 0
        for record in records:
            if record.seqno <= applied:
                continue  # already folded into the checkpoint
            index._apply(record)
            index._next_seqno = record.seqno + 1
            replayed += 1
        if valid_bytes < os.path.getsize(index._wal.path):
            # Torn tail: drop the partial record so future appends start
            # at a clean boundary.
            index._wal.close()
            with open(index._wal.path, "rb+") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            index._wal = WriteAheadLog(
                index._wal.path,
                fsync_interval=index._wal.fsync_interval,
                injector=index._injector,
            )
        with span(
            "live.recover",
            replayed=replayed,
            applied_seqno=applied,
            wal_bytes=valid_bytes,
        ):
            pass
        del started_s
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def scheme(self) -> SignatureScheme:
        """The signature scheme shared by base and delta."""
        return self._scheme

    @property
    def base_table(self) -> SignatureTable:
        """The current immutable base segment."""
        return self._base_table

    @property
    def num_transactions(self) -> int:
        """Logical size: live base rows plus live delta rows."""
        with self._swap_lock:
            return int(self._base_live.sum()) + len(self._delta)

    @property
    def delta_size(self) -> int:
        """Live rows currently in the delta."""
        return len(self._delta)

    @property
    def tombstone_count(self) -> int:
        """Base rows deleted but not yet compacted away."""
        return int(self._base_live.size - self._base_live.sum())

    @property
    def sketch_enabled(self) -> bool:
        """Whether the base table carries a sketch column (lsh tier usable)."""
        return self._base_table.sketch is not None

    def logical_sketch_signatures(self) -> Optional[np.ndarray]:
        """Sketch signatures of the logical database, row-aligned with
        :meth:`logical_db` (``None`` when no sketch is attached).

        The differential harness in ``tests/sketch`` compares this
        against a fresh ``sign_batch`` over :meth:`logical_db` to pin
        signature consistency across insert/delete/compact/recover.
        """
        with self._swap_lock:
            sketch = self._base_table.sketch
            if sketch is None:
                return None
            base_sigs = sketch.signatures[self._base_live]
            positions = self._delta.live_positions()
            delta_sigs = [self._delta_sigs[p] for p in positions]
        if not delta_sigs:
            return base_sigs
        return np.vstack([base_sigs, np.stack(delta_sigs)])

    @property
    def applied_seqno(self) -> int:
        """Highest sequence number folded into the checkpoint on disk."""
        return self._applied_seqno

    @property
    def wal(self) -> WriteAheadLog:
        """The write-ahead log (for I/O accounting and tests)."""
        return self._wal

    def describe(self) -> Dict[str, object]:
        """JSON-safe description for the service ``stats`` endpoint."""
        with self._swap_lock:
            base_live = int(self._base_live.sum())
            delta = len(self._delta)
        return {
            "kind": "live",
            "num_transactions": base_live + delta,
            "base_transactions": int(self._base_live.size),
            "delta_size": delta,
            "tombstones": int(self._base_live.size - base_live),
            "wal_bytes": self._wal.size_bytes,
            "applied_seqno": self._applied_seqno,
            "compactions": self.compactions,
            "dedupe_entries": len(self.dedupe),
            "num_signatures": self._scheme.num_signatures,
            "sketch_enabled": self.sketch_enabled,
        }

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(
        self,
        items: Iterable[int],
        client_id: Optional[str] = None,
        request_id: Optional[int] = None,
    ) -> int:
        """Durably insert a transaction; returns its logical tid.

        The WAL append happens *before* the in-memory apply, so an
        acknowledged insert is always recoverable.  With an idempotency
        key (``client_id`` + ``request_id``) the insert is
        *exactly-once*: a retransmission of an already-applied key
        answers with the originally acknowledged tid and changes
        nothing, even across crash + recovery (the key rides the WAL
        record and the checkpoint).
        """
        array = as_item_array(items, self._scheme.universe_size)
        if array.size == 0:
            raise ValueError("cannot insert an empty transaction")
        keyed = client_id is not None and request_id is not None
        with self._mutation_lock:
            self._check_open()
            if keyed:
                cached = self.dedupe.lookup(client_id, request_id)
                if cached is not None:
                    return int(cached["tid"])
            with span("live.insert", num_items=int(array.size)):
                seqno = self._next_seqno
                appended = self._wal.append_insert(
                    seqno,
                    array,
                    client_id=client_id if keyed else None,
                    request_id=request_id if keyed else None,
                )
                self._next_seqno = seqno + 1
                with self._swap_lock:
                    self._delta_insert(array)
                    logical = (
                        int(self._base_live.sum()) + len(self._delta) - 1
                    )
                if keyed:
                    self.dedupe.record(
                        client_id, request_id, {"tid": int(logical)}
                    )
            self._record_wal_metrics(appended)
            return logical

    def delete(
        self,
        logical_tid: int,
        client_id: Optional[str] = None,
        request_id: Optional[int] = None,
    ) -> None:
        """Durably delete the transaction at a logical tid.

        Logical tids address the *current* logical database (live base
        rows in tid order, then live delta rows in insertion order) —
        the numbering a fresh build over the current state would use.
        Raises :class:`ValueError` when the tid is out of range (nothing
        is logged in that case).  With an idempotency key a
        retransmission of an applied delete is a no-op — crucial here,
        since blindly re-applying it would delete whichever *different*
        row now occupies that logical tid.
        """
        with self._mutation_lock:
            self._check_open()
            logical_tid = int(logical_tid)
            keyed = client_id is not None and request_id is not None
            if keyed and self.dedupe.lookup(client_id, request_id) is not None:
                return
            num_live = int(self._base_live.sum())
            total = num_live + len(self._delta)
            if not 0 <= logical_tid < total:
                raise ValueError(
                    f"logical tid {logical_tid} out of range [0, {total})"
                )
            with span("live.delete", logical_tid=logical_tid):
                seqno = self._next_seqno
                appended = self._wal.append_delete(
                    seqno,
                    logical_tid,
                    client_id=client_id if keyed else None,
                    request_id=request_id if keyed else None,
                )
                self._next_seqno = seqno + 1
                with self._swap_lock:
                    self._apply_delete(logical_tid)
                if keyed:
                    self.dedupe.record(
                        client_id, request_id, {"deleted": int(logical_tid)}
                    )
            self._record_wal_metrics(appended)

    def _apply(self, record) -> None:
        """Re-apply one WAL record during recovery (no re-logging).

        Keyed records also repopulate the dedupe table; replay visits
        the same intermediate states as the original run, so the logical
        tid recorded for a keyed insert equals the originally
        acknowledged one.
        """
        if record.is_insert:
            with self._swap_lock:
                self._delta_insert(record.items)
                logical = int(self._base_live.sum()) + len(self._delta) - 1
            if record.key is not None:
                self.dedupe.record(
                    record.client_id, record.request_id, {"tid": logical}
                )
        elif record.is_delete:
            with self._swap_lock:
                self._apply_delete(int(record.logical_tid))
            if record.key is not None:
                self.dedupe.record(
                    record.client_id,
                    record.request_id,
                    {"deleted": int(record.logical_tid)},
                )
        else:  # pragma: no cover - encode_record rejects unknown ops
            raise ValueError(f"unknown WAL op {record.op}")

    def _delta_insert(self, array: np.ndarray) -> None:
        """Insert one delta row, keeping the sketch column aligned.

        The single funnel for delta inserts — live writes, WAL replay,
        and checkpointed-delta rehydration all pass through here, so the
        signature list stays position-aligned by construction no matter
        how the row arrived.
        """
        self._delta.insert(array)
        if self._sketch_hasher is not None:
            self._delta_sigs.append(self._sketch_hasher.sign(array))

    def _apply_delete(self, logical_tid: int) -> None:
        """Resolve and apply a delete against the current state.

        Caller holds the swap lock.  Deterministic given the same state
        and the same op sequence — the property WAL replay relies on.
        """
        num_live = int(self._base_live.sum())
        if logical_tid < num_live:
            base_tid = int(np.nonzero(self._base_live)[0][logical_tid])
            self._base_live[base_tid] = False
        else:
            rank = logical_tid - num_live
            positions = self._delta.live_positions()
            if rank >= len(positions):
                raise ValueError(
                    f"logical tid {logical_tid} out of range"
                )
            self._delta.remove(positions[rank])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _read_state(self) -> _ReadState:
        with self._swap_lock:
            return _ReadState(
                self._base_searcher,
                self._base_live.copy(),
                self._delta.snapshot(),
            )

    @staticmethod
    def _merge(
        base_neighbors: List[Neighbor],
        base_live: np.ndarray,
        delta_pairs: List[Tuple[int, float]],
        num_base_live: int,
    ) -> List[Neighbor]:
        """Remap to logical tids, drop tombstones, merge deterministically."""
        logical_of_base = np.cumsum(base_live) - 1
        merged = [
            Neighbor(tid=int(logical_of_base[nb.tid]), similarity=nb.similarity)
            for nb in base_neighbors
            if base_live[nb.tid]
        ]
        merged.extend(
            Neighbor(tid=num_base_live + rank, similarity=value)
            for rank, value in delta_pairs
        )
        merged.sort(key=lambda nb: (-nb.similarity, nb.tid))
        return merged

    def _sketch_probe(self, state: _ReadState, target, target_recall):
        """Probe the base sketch for the lsh tier; returns (probe, mask).

        The mask covers *base* tids only — the delta is memory-resident
        and always scanned fully, so approximation never touches it.
        """
        sketch = state.searcher.table.sketch
        if sketch is None:
            raise ValueError(
                "candidate_tier='lsh' requires a sketch column; create the "
                "live index with sketch=True (or attach one before the "
                "initial snapshot)"
            )
        probe = sketch.probe(target, target_recall)
        return probe, probe.mask(state.base_live.size)

    @staticmethod
    def _finish_sketch_stats(stats: SearchStats, state: _ReadState, probe) -> None:
        """Stamp lsh-tier fields onto merged live-query stats."""
        sketch = state.searcher.table.sketch
        stats.candidate_tier = "lsh"
        stats.guaranteed_optimal = False
        stats.sketch_candidates = int(probe.candidates.size) + len(state.delta)
        stats.estimated_recall = sketch.estimate_result_recall(probe)

    def knn(
        self,
        target: Iterable[int],
        similarity: SimilarityFunction,
        k: int = 1,
        early_termination: Optional[float] = None,
        guarantee_tolerance: Optional[float] = None,
        sort_by: str = "optimistic",
        candidate_tier: str = "exact",
        target_recall: Optional[float] = None,
    ) -> Tuple[List[Neighbor], SearchStats]:
        """k-NN over the logical database; tids in results are logical.

        Exact queries (no ``early_termination``) are byte-identical to a
        fresh build over the logical database.  The base is asked for
        ``k`` plus the tombstone count so that filtering dead rows can
        never surface fewer than the true top ``k`` live ones; the delta
        snapshot contributes its own top ``k``.  With early termination
        the base scan is approximate exactly as in the frozen searcher
        (the delta, being memory-resident, is always scanned fully).

        ``candidate_tier="lsh"`` prefilters the *base* scan through the
        sketch band index at ``target_recall`` (delta rows are always
        scanned fully); results become approximate and the stats carry
        ``estimated_recall`` with ``guaranteed_optimal=False``.
        """
        check_positive(k, "k")
        state = self._read_state()
        probe = tid_mask = None
        if candidate_tier == "lsh":
            probe, tid_mask = self._sketch_probe(state, target, target_recall)
        elif candidate_tier != "exact":
            raise ValueError(f"unknown candidate_tier {candidate_tier!r}")
        base_neighbors, stats = state.searcher.knn(
            target,
            similarity,
            k=k + state.num_dead,
            early_termination=early_termination,
            guarantee_tolerance=guarantee_tolerance,
            sort_by=sort_by,
            tid_mask=tid_mask,
        )
        delta_pairs = state.delta.knn_candidates(target, similarity, k)
        merged = self._merge(
            base_neighbors, state.base_live, delta_pairs, state.num_base_live
        )
        del merged[k:]
        stats.total_transactions = state.num_base_live + len(state.delta)
        stats.transactions_accessed += len(state.delta)
        if probe is not None:
            self._finish_sketch_stats(stats, state, probe)
        return merged, stats

    def range_query(
        self,
        target: Iterable[int],
        similarity: SimilarityFunction,
        threshold: float,
        candidate_tier: str = "exact",
        target_recall: Optional[float] = None,
    ) -> Tuple[List[Neighbor], SearchStats]:
        """All logical transactions with similarity >= ``threshold``.

        ``candidate_tier="lsh"`` behaves as in :meth:`knn`: the base scan
        is restricted to sketch candidates, the delta is scanned fully,
        and the stats report the estimated recall.
        """
        state = self._read_state()
        probe = tid_mask = None
        if candidate_tier == "lsh":
            probe, tid_mask = self._sketch_probe(state, target, target_recall)
        elif candidate_tier != "exact":
            raise ValueError(f"unknown candidate_tier {candidate_tier!r}")
        base_neighbors, stats = state.searcher.range_query(
            target, similarity, threshold, tid_mask=tid_mask
        )
        delta_pairs = state.delta.range_candidates(target, similarity, threshold)
        merged = self._merge(
            base_neighbors, state.base_live, delta_pairs, state.num_base_live
        )
        stats.total_transactions = state.num_base_live + len(state.delta)
        stats.transactions_accessed += len(state.delta)
        if probe is not None:
            self._finish_sketch_stats(stats, state, probe)
        return merged, stats

    def logical_db(self) -> TransactionDatabase:
        """Materialise the logically-current database.

        Row ``t`` is the transaction a fresh build would index at tid
        ``t`` — the differential oracle compares against exactly this.
        """
        with self._swap_lock:
            live_tids = np.nonzero(self._base_live)[0]
            delta_arrays = self._delta.snapshot().rows
            base_db = self._base_db
        parts = [base_db.subset(live_tids)]
        if delta_arrays:
            parts.append(
                TransactionDatabase(
                    delta_arrays, universe_size=base_db.universe_size
                )
            )
        return TransactionDatabase.concatenate(parts)

    # ------------------------------------------------------------------
    # Drift
    # ------------------------------------------------------------------
    def drift_report(self, kl_threshold: float = 0.1) -> Optional[DriftReport]:
        """Compare delta vs base per-signature activation distributions.

        Returns ``None`` while the delta is empty.  A drifted report
        recommends re-partitioning at the next compaction
        (``compact(repartition=True)``).
        """
        with self._swap_lock:
            delta_fractions = self._delta.activation_fractions()
            num_delta = len(self._delta)
        if delta_fractions is None:
            return None
        if self._base_fractions is None:
            counts = self._scheme.activation_counts_batch(self._base_db)
            active = counts >= self._scheme.activation_threshold
            live = self._base_live
            self._base_fractions = (
                active[live].mean(axis=0)
                if live.any()
                else np.zeros(self._scheme.num_signatures)
            )
        return activation_drift(
            self._base_fractions,
            delta_fractions,
            num_delta=num_delta,
            kl_threshold=kl_threshold,
        )

    # ------------------------------------------------------------------
    # Compaction / checkpoint
    # ------------------------------------------------------------------
    def should_compact(self) -> bool:
        """Whether the configured :class:`CompactionPolicy` triggers."""
        with self._swap_lock:
            return self.policy.should_compact(
                len(self._delta),
                int(self._base_live.size - self._base_live.sum()),
                int(self._base_live.size),
            )

    def maybe_compact(self) -> Optional[CompactionReport]:
        """Compact inline if the policy triggers; returns the report."""
        if not self.should_compact():
            return None
        return self.compact()

    def compact_in_background(self) -> threading.Thread:
        """Run :meth:`compact` on a daemon thread; returns the thread.

        Readers proceed throughout (the rebuild happens outside the swap
        lock); writers block until the compaction finishes.
        """
        thread = threading.Thread(
            target=self.compact, name="repro-live-compact", daemon=True
        )
        thread.start()
        return thread

    def compact(self, repartition: bool = False) -> CompactionReport:
        """Fold delta + tombstones into a fresh base segment.

        Rebuilds the base table over the logical database, writes an
        atomic checkpoint, resets the WAL, and swaps the segments in
        under the swap lock.  With ``repartition=True`` the signature
        partition is re-learned from the merged data first (the drift
        advisor's recommendation); the scheme keeps its ``K`` and ``r``.
        """
        started_s = time.perf_counter()
        with self._mutation_lock:
            self._check_open()
            with span("live.compact", repartition=repartition):
                merged_inserts = len(self._delta)
                dropped = int(self._base_live.size - self._base_live.sum())
                new_db = self.logical_db()
                if len(new_db) == 0:
                    raise ValueError(
                        "cannot compact an empty logical database; "
                        "insert before compacting"
                    )
                scheme = self._scheme
                if repartition:
                    from repro.core.partitioning import partition_items

                    scheme = partition_items(
                        new_db,
                        num_signatures=self._scheme.num_signatures,
                        activation_threshold=self._scheme.activation_threshold,
                        rng=0,
                    )
                new_table = SignatureTable.build(
                    new_db, scheme, page_size=self._page_size
                )
                old_sketch = self._base_table.sketch
                if old_sketch is not None:
                    # Signatures are a pure function of the items, so the
                    # compacted sketch is a re-ordering of rows we already
                    # have: live base rows in tid order, then live delta
                    # rows in insertion order — the logical_db() order.
                    from repro.sketch import SketchIndex

                    parts = [old_sketch.signatures[self._base_live]]
                    positions = self._delta.live_positions()
                    if positions:
                        parts.append(
                            np.stack([self._delta_sigs[p] for p in positions])
                        )
                    new_table.attach_sketch(
                        SketchIndex(
                            old_sketch.hasher,
                            np.vstack(parts),
                            num_bands=old_sketch.bands.num_bands,
                            rows_per_band=old_sketch.bands.rows_per_band,
                            design_similarity=old_sketch.design_similarity,
                        )
                    )
                applied = self._next_seqno - 1
                self._fault_gate("checkpoint.write")
                base_files = self._write_base_snapshot(
                    self.path, applied, new_table, new_db
                )
                dedupe_file = self._write_dedupe_snapshot(applied)
                self._fault_gate("checkpoint.manifest")
                self._commit_manifest(
                    self.path,
                    applied_seqno=applied,
                    base_files=base_files,
                    page_size=self._page_size,
                    dedupe=dedupe_file,
                )
                self._wal.reset()
                new_searcher = SignatureTableSearcher(new_table, new_db)
                with self._swap_lock:
                    self._base_table = new_table
                    self._base_db = new_db
                    self._base_searcher = new_searcher
                    self._base_live = np.ones(len(new_db), dtype=bool)
                    self._base_files = base_files
                    self._delta.clear()
                    self._delta_sigs = []
                    self._scheme = scheme
                    self._delta.scheme = scheme
                    self._applied_seqno = applied
                    self._base_fractions = None
                self.compactions += 1
        duration = time.perf_counter() - started_s
        if self._metrics is not None:
            self._metrics["compactions"].inc()
            self._metrics["compaction_seconds"].observe(duration)
        return CompactionReport(
            merged_inserts=merged_inserts,
            dropped_tombstones=dropped,
            new_num_transactions=len(new_db),
            applied_seqno=applied,
            duration_seconds=duration,
            repartitioned=repartition,
        )

    def checkpoint(self) -> int:
        """Snapshot the full state (base + delta + tombstones), reset the WAL.

        Unlike :meth:`compact`, the in-memory segments are untouched —
        the delta stays a delta.  Durability only: recovery after this
        point starts from the snapshot with an empty log.  Returns the
        checkpointed sequence number.
        """
        started_s = time.perf_counter()
        with self._mutation_lock:
            self._check_open()
            with span("live.checkpoint"):
                applied = self._next_seqno - 1
                stamp = f"{applied:012d}"
                delta_file: Optional[str] = None
                tombstone_file: Optional[str] = None
                self._fault_gate("checkpoint.write")
                delta_arrays = self._delta.live_arrays()
                if delta_arrays:
                    delta_file = f"state-{stamp}.delta.npz"
                    TransactionDatabase(
                        delta_arrays,
                        universe_size=self._scheme.universe_size,
                    ).save(os.path.join(self.path, delta_file))
                    _fsync_file(os.path.join(self.path, delta_file))
                dead = np.nonzero(~self._base_live)[0]
                if dead.size:
                    tombstone_file = f"state-{stamp}.tombstones.npz"
                    np.savez_compressed(
                        os.path.join(self.path, tombstone_file), tids=dead
                    )
                    _fsync_file(os.path.join(self.path, tombstone_file))
                dedupe_file = self._write_dedupe_snapshot(applied)
                self._fault_gate("checkpoint.manifest")
                self._commit_manifest(
                    self.path,
                    applied_seqno=applied,
                    base_files=self._base_files,
                    page_size=self._page_size,
                    delta_db=delta_file,
                    tombstones=tombstone_file,
                    dedupe=dedupe_file,
                )
                self._wal.reset()
                self._applied_seqno = applied
        if self._metrics is not None:
            self._metrics["compaction_seconds"].observe(
                time.perf_counter() - started_s
            )
        return applied

    # ------------------------------------------------------------------
    # Persistence internals
    # ------------------------------------------------------------------
    def _fault_gate(self, site: str) -> None:
        """Fault-injection gate for a checkpoint step (no-op in production)."""
        if self._injector is None:
            return
        from repro.faults.errfs import checkpoint_fault

        checkpoint_fault(self._injector, site)

    def _write_dedupe_snapshot(self, applied: int) -> Optional[str]:
        """Persist the dedupe table beside a checkpoint (which resets the
        WAL — the keys riding it would otherwise be lost)."""
        if len(self.dedupe) == 0:
            return None
        name = f"state-{applied:012d}.dedupe.json"
        full = os.path.join(self.path, name)
        with open(full, "w", encoding="utf-8") as handle:
            json.dump(self.dedupe.to_json(), handle)
            handle.flush()
            os.fsync(handle.fileno())
        return name

    @staticmethod
    def _write_base_snapshot(
        path: str, seqno: int, table: SignatureTable, db: TransactionDatabase
    ) -> Tuple[str, str]:
        stamp = f"{seqno:012d}"
        table_file = f"base-{stamp}.table.npz"
        db_file = f"base-{stamp}.db.npz"
        table.save(os.path.join(path, table_file))
        _fsync_file(os.path.join(path, table_file))
        db.save(os.path.join(path, db_file))
        _fsync_file(os.path.join(path, db_file))
        return table_file, db_file

    @staticmethod
    def _commit_manifest(
        path: str,
        applied_seqno: int,
        base_files: Tuple[str, str],
        page_size: int,
        delta_db: Optional[str] = None,
        tombstones: Optional[str] = None,
        dedupe: Optional[str] = None,
    ) -> None:
        """Atomically publish a new manifest (the checkpoint commit point)."""
        manifest = {
            "format_version": MANIFEST_FORMAT_VERSION,
            "applied_seqno": int(applied_seqno),
            "base_table": base_files[0],
            "base_db": base_files[1],
            "delta_db": delta_db,
            "tombstones": tombstones,
            "dedupe": dedupe,
            "page_size": int(page_size),
        }
        tmp = os.path.join(path, _MANIFEST + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, os.path.join(path, _MANIFEST))
        _fsync_dir(path)

    # ------------------------------------------------------------------
    # Metrics / lifecycle
    # ------------------------------------------------------------------
    def _bind_metrics(self, registry) -> None:
        self._metrics = {
            "appends": registry.counter(
                "repro_wal_appends_total", "WAL records appended"
            ),
            "bytes": registry.counter(
                "repro_wal_bytes_total", "WAL bytes appended"
            ),
            "compactions": registry.counter(
                "repro_live_compactions_total", "Compactions completed"
            ),
            "compaction_seconds": registry.histogram(
                "repro_live_compaction_seconds",
                "Compaction / checkpoint duration",
            ),
        }
        registry.gauge(
            "repro_live_delta_size", "Live rows in the delta index"
        ).set_function(lambda: float(len(self._delta)))
        registry.gauge(
            "repro_live_tombstones", "Tombstoned base rows"
        ).set_function(
            lambda: float(self._base_live.size - self._base_live.sum())
        )
        registry.gauge(
            "repro_wal_fsyncs", "fsync calls issued by the WAL"
        ).set_function(lambda: float(self._wal.counters.fsyncs))

    def _record_wal_metrics(self, appended_bytes: int) -> None:
        if self._metrics is not None:
            self._metrics["appends"].inc()
            self._metrics["bytes"].inc(appended_bytes)

    def probe(self) -> bool:
        """One durability probe: is the WAL writable and syncable again?

        The server's degraded mode calls this before re-admitting
        mutations after a WAL/checkpoint write failure.  Never raises.
        """
        with self._mutation_lock:
            if self._closed:
                return False
            return self._wal.probe()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("live index is closed")

    def close(self) -> None:
        """Flush and close the WAL (idempotent); queries stay usable."""
        with self._mutation_lock:
            if not self._closed:
                self._wal.close()
                self._closed = True

    def __enter__(self) -> "LiveIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
