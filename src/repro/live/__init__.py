"""Live index maintenance: WAL-backed delta index with background compaction.

The base :class:`~repro.core.table.SignatureTable` is immutable — built
once over a frozen database.  This package layers a *mutable* index on
top of it, LSM-style:

* :class:`~repro.live.wal.WriteAheadLog` — an append-only log of
  inserts/deletes (length-prefixed, CRC32-protected records using the
  :mod:`repro.storage.codec` varint encoding) that makes every
  acknowledged mutation durable;
* :class:`~repro.live.delta.DeltaIndex` — a small in-memory signature
  table over recently inserted transactions, grouped by supercoordinate
  under the *same* :class:`~repro.core.signature.SignatureScheme` as the
  base so the branch-and-bound optimistic bounds stay valid;
* :class:`~repro.live.index.LiveIndex` — the composite: base segment +
  delta + tombstones + WAL, with crash recovery
  (:meth:`~repro.live.index.LiveIndex.recover`), atomic checkpoints and
  background compaction that swaps segments without blocking readers;
* :class:`~repro.live.engine.LiveQueryEngine` — the ``run_batch``
  adapter that lets the query service's micro-batcher serve a live
  index exactly as it serves a frozen one.

Queries fan out to base and delta, filter tombstones and merge under
the deterministic ``(-similarity, tid)`` order — results are
byte-identical to rebuilding a fresh table over the logically-current
database (the differential oracle pinned by ``tests/live``).
"""

from repro.live.delta import DeltaIndex
from repro.live.engine import LiveQueryEngine
from repro.live.index import CompactionPolicy, CompactionReport, LiveIndex
from repro.live.wal import WalRecord, WriteAheadLog, replay_wal

__all__ = [
    "CompactionPolicy",
    "CompactionReport",
    "DeltaIndex",
    "LiveIndex",
    "LiveQueryEngine",
    "WalRecord",
    "WriteAheadLog",
    "replay_wal",
]
