"""Write-ahead log for the live index.

Every mutation is appended to an append-only file *before* it is applied
to the in-memory delta/tombstone state, so an acknowledged insert or
delete survives a crash: :func:`replay_wal` reads the log back and
:meth:`~repro.live.index.LiveIndex.recover` re-applies the tail that a
checkpoint has not yet folded in.

Record framing
--------------
Each record is ``[varint payload_length][payload][crc32]`` where the
CRC32 (4 bytes, little-endian, over the payload only) detects torn or
corrupted tails.  The payload reuses the :mod:`repro.storage.codec`
varint encoding::

    payload := op_byte  varint(seqno)  [idempotency_key]  body
    op 1 (INSERT):       body = encode_transaction(items)
    op 2 (DELETE):       body = varint(logical_tid)
    op 3 (INSERT_KEYED): key + INSERT body
    op 4 (DELETE_KEYED): key + DELETE body

    idempotency_key := varint(len(client_id)) client_id_utf8
                       varint(request_id)

Keyed records carry the ``(client_id, request_id)`` a retrying client
stamped on the mutation; replay feeds them into the live index's dedupe
table so exactly-once semantics survive crash + recovery (see
:mod:`repro.live.dedupe`).  ``seqno`` increases by one per record.
Checkpoints store the highest sequence number they have folded in;
replay skips records at or below it, which makes *any* crash ordering
between "snapshot committed" and "log reset" safe — stale records are
simply ignored.

Torn tails
----------
A crash can leave a partial record at the end of the file (short length
prefix, short payload, or a CRC mismatch).  Replay treats the first
malformed record as the end of the log and reports the byte offset of
the last *valid* record boundary; everything before it is intact because
records are only ever appended.  A malformed record anywhere *before*
the tail would mean silent corruption, so replay distinguishes the two:
a clean stop at the tail is normal recovery, and callers can truncate
the file back to the reported offset.

The *writer* maintains the same invariant online: a failed append (short
write mid-record, ``EIO``, ``ENOSPC``) rewinds the file back to the last
whole-record boundary before the error is surfaced, so an unacknowledged
record can never linger in front of later acknowledged ones.  If the
rewind itself fails the log refuses further appends (every attempt first
re-tries the rewind — the self-healing path a durability probe uses)
rather than appending after garbage.

Durability
----------
``fsync_interval=n`` batches fsyncs: the file is written straight to the
OS on every append but synced to the platter every ``n`` appends (and on
:meth:`WriteAheadLog.sync` / :meth:`WriteAheadLog.close`).  With
``n == 1`` a failed fsync also rewinds the record that triggered it —
an insert that raises must not become durable behind the caller's back.
Appends and syncs are charged to an
:class:`~repro.storage.pages.IOCounters`
(``pages_written``/``fsyncs``), so ingest shows up in the same I/O
reports queries use.

Fault injection
---------------
All physical I/O goes through a :class:`WalFile`, the seam
:class:`repro.faults.errfs.FailingWalFile` wraps; pass ``injector=``
(a :class:`~repro.faults.plan.FaultInjector`) to construct the log with
the failing wrapper.  With no injector the log pays nothing.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.codec import (
    _decode_varint,
    _encode_varint,
    decode_transaction,
    encode_transaction,
)
from repro.storage.pages import IOCounters
from repro.utils.validation import check_positive

#: Record operation codes.
OP_INSERT = 1
OP_DELETE = 2
OP_INSERT_KEYED = 3
OP_DELETE_KEYED = 4

_INSERT_OPS = (OP_INSERT, OP_INSERT_KEYED)
_DELETE_OPS = (OP_DELETE, OP_DELETE_KEYED)
_KEYED_OPS = (OP_INSERT_KEYED, OP_DELETE_KEYED)

#: Bytes per simulated page for write accounting (matches the codec's
#: default physical page size).
PAGE_BYTES = 4096

#: Upper bound on an encoded client id, mirrored by protocol validation.
MAX_CLIENT_ID_BYTES = 64

_CRC_BYTES = 4


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record.

    ``items`` is set for inserts, ``logical_tid`` for deletes; ``seqno``
    is the record's monotonically increasing sequence number.  Keyed
    records additionally carry the client's idempotency key
    ``(client_id, request_id)``.
    """

    seqno: int
    op: int
    items: Optional[np.ndarray] = None
    logical_tid: Optional[int] = None
    client_id: Optional[str] = None
    request_id: Optional[int] = None

    @property
    def is_insert(self) -> bool:
        return self.op in _INSERT_OPS

    @property
    def is_delete(self) -> bool:
        return self.op in _DELETE_OPS

    @property
    def key(self) -> Optional[Tuple[str, int]]:
        """The idempotency key, or ``None`` for unkeyed records."""
        if self.op in _KEYED_OPS:
            return (self.client_id or "", int(self.request_id or 0))
        return None


def encode_record(record: WalRecord) -> bytes:
    """Frame one record: varint length + payload + CRC32(payload)."""
    if record.op not in _INSERT_OPS + _DELETE_OPS:
        raise ValueError(f"unknown WAL op {record.op}")
    payload = bytearray([record.op])
    _encode_varint(record.seqno, payload)
    if record.op in _KEYED_OPS:
        if record.client_id is None or record.request_id is None:
            raise ValueError("keyed WAL records need client_id and request_id")
        encoded_id = record.client_id.encode("utf-8")
        if not 0 < len(encoded_id) <= MAX_CLIENT_ID_BYTES:
            raise ValueError(
                f"client_id must encode to 1..{MAX_CLIENT_ID_BYTES} bytes"
            )
        _encode_varint(len(encoded_id), payload)
        payload.extend(encoded_id)
        _encode_varint(int(record.request_id), payload)
    if record.is_insert:
        assert record.items is not None
        payload.extend(encode_transaction(record.items))
    else:
        assert record.logical_tid is not None
        _encode_varint(int(record.logical_tid), payload)
    out = bytearray()
    _encode_varint(len(payload), out)
    out.extend(payload)
    out.extend(zlib.crc32(bytes(payload)).to_bytes(_CRC_BYTES, "little"))
    return bytes(out)


def decode_payload(payload: bytes) -> WalRecord:
    """Decode one CRC-verified payload into a :class:`WalRecord`."""
    if not payload:
        raise ValueError("empty WAL payload")
    op = payload[0]
    if op not in _INSERT_OPS + _DELETE_OPS:
        raise ValueError(f"unknown WAL op {op}")
    seqno, offset = _decode_varint(payload, 1)
    client_id: Optional[str] = None
    request_id: Optional[int] = None
    if op in _KEYED_OPS:
        id_length, offset = _decode_varint(payload, offset)
        # Bound before slicing: a corrupted length varint must not read
        # past the payload (CRC already vouches, but stay defensive).
        if id_length == 0 or id_length > MAX_CLIENT_ID_BYTES:
            raise ValueError(f"WAL client_id length {id_length} out of range")
        if offset + id_length > len(payload):
            raise ValueError("WAL client_id overruns the payload")
        client_id = payload[offset : offset + id_length].decode("utf-8")
        offset += id_length
        request_id, offset = _decode_varint(payload, offset)
    if op in _INSERT_OPS:
        items, offset = decode_transaction(payload, offset)
        record = WalRecord(
            seqno=seqno,
            op=op,
            items=items,
            client_id=client_id,
            request_id=request_id,
        )
    else:
        logical_tid, offset = _decode_varint(payload, offset)
        record = WalRecord(
            seqno=seqno,
            op=op,
            logical_tid=logical_tid,
            client_id=client_id,
            request_id=request_id,
        )
    if offset != len(payload):
        raise ValueError(
            f"{len(payload) - offset} trailing bytes in WAL payload"
        )
    return record


def iter_records(data: bytes) -> Iterator[Tuple[WalRecord, int]]:
    """Yield ``(record, end_offset)`` pairs until the data ends or tears.

    Stops silently at the first malformed record — by the append-only
    invariant that is a torn tail from a crash, and everything after it
    is garbage.  ``end_offset`` is the offset one past the record's CRC,
    i.e. the file prefix length that contains only whole records.
    """
    offset = 0
    total = len(data)
    while offset < total:
        try:
            length, body_start = _decode_varint(data, offset)
        except ValueError:
            return  # torn length prefix
        body_end = body_start + length
        if body_end + _CRC_BYTES > total:
            return  # torn payload or CRC
        payload = data[body_start:body_end]
        expected = int.from_bytes(
            data[body_end : body_end + _CRC_BYTES], "little"
        )
        if zlib.crc32(payload) != expected:
            return  # corrupted (or torn mid-overwrite) record
        try:
            record = decode_payload(payload)
        except ValueError:
            return
        offset = body_end + _CRC_BYTES
        yield record, offset


def replay_wal(path) -> Tuple[List[WalRecord], int]:
    """Read every intact record from a WAL file.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the
    length of the longest file prefix made of whole records — a torn
    tail past it is ignored (and may be truncated away by the caller).
    A missing file replays as empty.
    """
    if not os.path.exists(path):
        return [], 0
    with open(path, "rb") as handle:
        data = handle.read()
    records: List[WalRecord] = []
    valid = 0
    for record, end in iter_records(data):
        records.append(record)
        valid = end
    return records, valid


class WalFile:
    """Raw append-only file descriptor: the physical-I/O seam.

    Every byte the :class:`WriteAheadLog` persists flows through this
    object's four primitives — ``write`` (which may be short, like the
    ``os.write`` it wraps), ``fsync``, ``truncate`` and ``close`` — so a
    fault shim (:class:`repro.faults.errfs.FailingWalFile`) can fail any
    of them without touching the log's framing or recovery logic.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._fd = os.open(
            self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
        )

    def write(self, data) -> int:
        """Append bytes; returns how many were accepted (may be short)."""
        return os.write(self._fd, data)

    def fsync(self) -> None:
        os.fsync(self._fd)

    def truncate(self, size: int) -> None:
        os.ftruncate(self._fd, size)

    def size(self) -> int:
        return os.fstat(self._fd).st_size

    @property
    def closed(self) -> bool:
        return self._fd < 0

    def close(self) -> None:
        if self._fd >= 0:
            fd, self._fd = self._fd, -1
            os.close(fd)


class WriteAheadLog:
    """Append-only durable log of live-index mutations.

    Parameters
    ----------
    path:
        Log file location; created (empty) when absent.  Appends go to
        the current end of the file, so reopening an existing log
        continues it.
    fsync_interval:
        Sync to disk every this-many appends (1 = every append, the
        durable default).  :meth:`sync` and :meth:`close` always sync
        pending appends.
    counters:
        Optional :class:`~repro.storage.pages.IOCounters` charged with
        ``pages_written`` (bytes appended, in :data:`PAGE_BYTES` pages)
        and ``fsyncs``.
    injector:
        Optional :class:`~repro.faults.plan.FaultInjector`; when given,
        physical I/O runs through the errfs-style failing wrapper
        (sites ``wal.write`` / ``wal.fsync`` / ``wal.truncate``).
    """

    def __init__(
        self,
        path,
        fsync_interval: int = 1,
        counters: Optional[IOCounters] = None,
        injector=None,
    ) -> None:
        check_positive(fsync_interval, "fsync_interval")
        self.path = os.fspath(path)
        self.fsync_interval = int(fsync_interval)
        self.counters = counters if counters is not None else IOCounters()
        self.injector = injector
        self._file = self._open_file()
        #: End of the last whole record on disk (the rewind target).
        self._tail_offset = self._file.size()
        #: True when a failed rewind left garbage past ``_tail_offset``.
        self._tail_dirty = False
        self._unsynced = 0
        #: Lifetime append/byte tallies (feed the obs gauges).
        self.appends = 0
        self.bytes_written = 0

    def _open_file(self) -> WalFile:
        if self.injector is not None:
            from repro.faults.errfs import FailingWalFile

            return FailingWalFile(self.path, self.injector)
        return WalFile(self.path)

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Current log size on disk."""
        return os.path.getsize(self.path)

    def _error(self, exc: OSError, seqno: Optional[int], what: str) -> OSError:
        """Re-raise an I/O failure with the WAL path and seqno attached."""
        where = f"WAL {self.path!r}"
        if seqno is not None:
            where += f" seqno {seqno}"
        wrapped = OSError(
            exc.errno, f"{what} failed at {where}: {exc.strerror or exc}"
        )
        wrapped.filename = self.path
        return wrapped

    def _write_all(self, data: bytes, seqno: int) -> None:
        """Write every byte of ``data``, looping over short writes.

        ``os.write`` may accept fewer bytes than offered (signals, disk
        pressure, the fault shim); assuming it wrote everything would
        tear the record silently.  A zero-progress write is surfaced as
        ``ENOSPC`` rather than spinning.
        """
        view = memoryview(data)
        written = 0
        while written < len(data):
            accepted = self._file.write(view[written:])
            if not accepted or accepted < 0:
                import errno as _errno

                raise OSError(
                    _errno.ENOSPC,
                    f"write accepted 0 of {len(data) - written} bytes",
                )
            written += accepted

    def _rewind(self, offset: int) -> None:
        """Drop a partial record: truncate back to the last boundary.

        Best-effort — if the truncate itself fails the tail is marked
        dirty and every later append re-tries the rewind before writing
        (never appending after garbage).
        """
        try:
            self._file.truncate(offset)
            self._tail_dirty = False
        except OSError:
            self._tail_dirty = True

    def _ensure_clean_tail(self, seqno: Optional[int]) -> None:
        if not self._tail_dirty:
            return
        try:
            self._file.truncate(self._tail_offset)
        except OSError as exc:
            raise self._error(exc, seqno, "torn-tail rewind") from exc
        self._tail_dirty = False

    def _do_sync(self) -> None:
        self._file.fsync()
        self.counters.fsyncs += 1

    def append(self, record: WalRecord) -> int:
        """Append one record; returns the bytes written.

        The record goes straight to the OS and is fsynced on the
        batching schedule — call :meth:`sync` to force durability now.
        On failure (short write, ``EIO``, ``ENOSPC``, or a failed fsync
        at ``fsync_interval == 1``) the file is rewound to the previous
        record boundary before the :class:`OSError` — carrying the WAL
        path and seqno — is raised, so a failed append is never left
        half-written in front of later appends.
        """
        encoded = encode_record(record)
        self._ensure_clean_tail(record.seqno)
        base = self._tail_offset
        synced = False
        try:
            self._write_all(encoded, record.seqno)
            if self._unsynced + 1 >= self.fsync_interval:
                self._do_sync()
                synced = True
        except OSError as exc:
            # The record was not acknowledged; it must not survive on
            # disk (written-but-unsynced bytes could surface after a
            # crash as a mutation nobody acked).
            self._rewind(base)
            raise self._error(exc, record.seqno, "append") from exc
        self._unsynced = 0 if synced else self._unsynced + 1
        self._tail_offset = base + len(encoded)
        self.appends += 1
        self.bytes_written += len(encoded)
        self.counters.pages_written += -(-len(encoded) // PAGE_BYTES)
        return len(encoded)

    def append_insert(
        self,
        seqno: int,
        items: Sequence[int],
        client_id: Optional[str] = None,
        request_id: Optional[int] = None,
    ) -> int:
        """Append an INSERT record (keyed when an idempotency key is given)."""
        keyed = client_id is not None
        return self.append(
            WalRecord(
                seqno=seqno,
                op=OP_INSERT_KEYED if keyed else OP_INSERT,
                items=np.asarray(items, dtype=np.int64),
                client_id=client_id,
                request_id=request_id,
            )
        )

    def append_delete(
        self,
        seqno: int,
        logical_tid: int,
        client_id: Optional[str] = None,
        request_id: Optional[int] = None,
    ) -> int:
        """Append a DELETE record (keyed when an idempotency key is given)."""
        keyed = client_id is not None
        return self.append(
            WalRecord(
                seqno=seqno,
                op=OP_DELETE_KEYED if keyed else OP_DELETE,
                logical_tid=int(logical_tid),
                client_id=client_id,
                request_id=request_id,
            )
        )

    def sync(self) -> None:
        """fsync pending appends to the platter."""
        if self._unsynced == 0:
            return
        try:
            self._do_sync()
        except OSError as exc:
            raise self._error(exc, None, "sync") from exc
        self._unsynced = 0

    def probe(self) -> bool:
        """One durability probe: rewind any torn tail, force an fsync.

        Returns ``True`` when the log is writable and durable again —
        the server's degraded-mode recovery check.  Never raises.
        """
        try:
            self._ensure_clean_tail(None)
            self._do_sync()
            self._unsynced = 0
            return True
        except OSError:
            return False

    @property
    def tail_offset(self) -> int:
        """Byte offset just past the last fully-appended record.

        Bytes in ``[0, tail_offset)`` are exactly the whole records this
        log has acknowledged appending; anything past it is a torn tail
        awaiting rewind.  This is the boundary replication tails read to.
        """
        return self._tail_offset

    def read_tail(self, offset: int) -> Tuple[bytes, int]:
        """Read the raw record bytes in ``[offset, tail_offset)``.

        Returns ``(data, new_offset)`` where ``new_offset`` is the tail
        offset the caller should resume from.  The returned bytes are a
        whole number of encoded records as long as ``offset`` was itself
        a record boundary previously returned by this method (or 0) and
        no :meth:`reset` happened in between — replication callers hold
        the index mutation lock across append + read, so both hold.

        Raises ``ValueError`` when ``offset`` is past the current tail,
        which is how a shipper detects a WAL reset (checkpoint or
        compaction) and restarts from offset 0.
        """
        tail = self._tail_offset
        if offset > tail:
            raise ValueError(
                f"WAL tail offset {offset} is past the current tail {tail}; "
                "the log was reset (checkpoint/compaction) — restart from 0"
            )
        if offset == tail:
            return b"", tail
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            data = handle.read(tail - offset)
        if len(data) != tail - offset:
            raise ValueError(
                f"WAL {self.path!r} short read: wanted "
                f"[{offset}, {tail}), got {len(data)} bytes"
            )
        return data, tail

    def reset(self) -> None:
        """Atomically truncate the log to empty (post-checkpoint).

        Writes an empty temporary file and renames it over the log, so a
        crash leaves either the full old log (whose records the fresh
        checkpoint supersedes by sequence number) or the empty new one —
        never a half-truncated file.
        """
        self.close()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self.counters.fsyncs += 1
        self._file = self._open_file()
        self._tail_offset = 0
        self._tail_dirty = False
        self._unsynced = 0

    def close(self) -> None:
        """Sync and close the file handle (idempotent).

        The descriptor is closed even when the final sync fails; the
        failure still propagates so callers know the tail may not be
        durable.
        """
        if self._file.closed:
            return
        try:
            self.sync()
        finally:
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
