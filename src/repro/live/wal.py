"""Write-ahead log for the live index.

Every mutation is appended to an append-only file *before* it is applied
to the in-memory delta/tombstone state, so an acknowledged insert or
delete survives a crash: :func:`replay_wal` reads the log back and
:meth:`~repro.live.index.LiveIndex.recover` re-applies the tail that a
checkpoint has not yet folded in.

Record framing
--------------
Each record is ``[varint payload_length][payload][crc32]`` where the
CRC32 (4 bytes, little-endian, over the payload only) detects torn or
corrupted tails.  The payload reuses the :mod:`repro.storage.codec`
varint encoding::

    payload := op_byte  varint(seqno)  body
    op 1 (INSERT): body = encode_transaction(items)
    op 2 (DELETE): body = varint(logical_tid)

``seqno`` increases by one per record.  Checkpoints store the highest
sequence number they have folded in; replay skips records at or below
it, which makes *any* crash ordering between "snapshot committed" and
"log reset" safe — stale records are simply ignored.

Torn tails
----------
A crash can leave a partial record at the end of the file (short length
prefix, short payload, or a CRC mismatch).  Replay treats the first
malformed record as the end of the log and reports the byte offset of
the last *valid* record boundary; everything before it is intact because
records are only ever appended.  A malformed record anywhere *before*
the tail would mean silent corruption, so replay distinguishes the two:
a clean stop at the tail is normal recovery, and callers can truncate
the file back to the reported offset.

Durability
----------
``fsync_interval=n`` batches fsyncs: the file is flushed to the OS on
every append but synced to the platter every ``n`` appends (and on
:meth:`WriteAheadLog.sync` / :meth:`WriteAheadLog.close`).  Appends and
syncs are charged to an :class:`~repro.storage.pages.IOCounters`
(``pages_written``/``fsyncs``), so ingest shows up in the same I/O
reports queries use.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.codec import (
    _decode_varint,
    _encode_varint,
    decode_transaction,
    encode_transaction,
)
from repro.storage.pages import IOCounters
from repro.utils.validation import check_positive

#: Record operation codes.
OP_INSERT = 1
OP_DELETE = 2

#: Bytes per simulated page for write accounting (matches the codec's
#: default physical page size).
PAGE_BYTES = 4096

_CRC_BYTES = 4


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record.

    ``items`` is set for inserts, ``logical_tid`` for deletes; ``seqno``
    is the record's monotonically increasing sequence number.
    """

    seqno: int
    op: int
    items: Optional[np.ndarray] = None
    logical_tid: Optional[int] = None


def encode_record(record: WalRecord) -> bytes:
    """Frame one record: varint length + payload + CRC32(payload)."""
    payload = bytearray([record.op])
    _encode_varint(record.seqno, payload)
    if record.op == OP_INSERT:
        assert record.items is not None
        payload.extend(encode_transaction(record.items))
    elif record.op == OP_DELETE:
        assert record.logical_tid is not None
        _encode_varint(int(record.logical_tid), payload)
    else:
        raise ValueError(f"unknown WAL op {record.op}")
    out = bytearray()
    _encode_varint(len(payload), out)
    out.extend(payload)
    out.extend(zlib.crc32(bytes(payload)).to_bytes(_CRC_BYTES, "little"))
    return bytes(out)


def decode_payload(payload: bytes) -> WalRecord:
    """Decode one CRC-verified payload into a :class:`WalRecord`."""
    if not payload:
        raise ValueError("empty WAL payload")
    op = payload[0]
    seqno, offset = _decode_varint(payload, 1)
    if op == OP_INSERT:
        items, offset = decode_transaction(payload, offset)
        record = WalRecord(seqno=seqno, op=op, items=items)
    elif op == OP_DELETE:
        logical_tid, offset = _decode_varint(payload, offset)
        record = WalRecord(seqno=seqno, op=op, logical_tid=logical_tid)
    else:
        raise ValueError(f"unknown WAL op {op}")
    if offset != len(payload):
        raise ValueError(
            f"{len(payload) - offset} trailing bytes in WAL payload"
        )
    return record


def iter_records(data: bytes) -> Iterator[Tuple[WalRecord, int]]:
    """Yield ``(record, end_offset)`` pairs until the data ends or tears.

    Stops silently at the first malformed record — by the append-only
    invariant that is a torn tail from a crash, and everything after it
    is garbage.  ``end_offset`` is the offset one past the record's CRC,
    i.e. the file prefix length that contains only whole records.
    """
    offset = 0
    total = len(data)
    while offset < total:
        try:
            length, body_start = _decode_varint(data, offset)
        except ValueError:
            return  # torn length prefix
        body_end = body_start + length
        if body_end + _CRC_BYTES > total:
            return  # torn payload or CRC
        payload = data[body_start:body_end]
        expected = int.from_bytes(
            data[body_end : body_end + _CRC_BYTES], "little"
        )
        if zlib.crc32(payload) != expected:
            return  # corrupted (or torn mid-overwrite) record
        try:
            record = decode_payload(payload)
        except ValueError:
            return
        offset = body_end + _CRC_BYTES
        yield record, offset


def replay_wal(path) -> Tuple[List[WalRecord], int]:
    """Read every intact record from a WAL file.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the
    length of the longest file prefix made of whole records — a torn
    tail past it is ignored (and may be truncated away by the caller).
    A missing file replays as empty.
    """
    if not os.path.exists(path):
        return [], 0
    with open(path, "rb") as handle:
        data = handle.read()
    records: List[WalRecord] = []
    valid = 0
    for record, end in iter_records(data):
        records.append(record)
        valid = end
    return records, valid


class WriteAheadLog:
    """Append-only durable log of live-index mutations.

    Parameters
    ----------
    path:
        Log file location; created (empty) when absent.  Appends go to
        the current end of the file, so reopening an existing log
        continues it.
    fsync_interval:
        Sync to disk every this-many appends (1 = every append, the
        durable default).  :meth:`sync` and :meth:`close` always sync
        pending appends.
    counters:
        Optional :class:`~repro.storage.pages.IOCounters` charged with
        ``pages_written`` (bytes appended, in :data:`PAGE_BYTES` pages)
        and ``fsyncs``.
    """

    def __init__(
        self,
        path,
        fsync_interval: int = 1,
        counters: Optional[IOCounters] = None,
    ) -> None:
        check_positive(fsync_interval, "fsync_interval")
        self.path = os.fspath(path)
        self.fsync_interval = int(fsync_interval)
        self.counters = counters if counters is not None else IOCounters()
        self._handle = open(self.path, "ab")
        self._unsynced = 0
        #: Lifetime append/byte tallies (feed the obs gauges).
        self.appends = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Current log size on disk."""
        return os.path.getsize(self.path)

    def append(self, record: WalRecord) -> int:
        """Append one record; returns the bytes written.

        The record is flushed to the OS immediately and fsynced on the
        batching schedule — call :meth:`sync` to force durability now.
        """
        encoded = encode_record(record)
        self._handle.write(encoded)
        self._handle.flush()
        self.appends += 1
        self.bytes_written += len(encoded)
        self.counters.pages_written += -(-len(encoded) // PAGE_BYTES)
        self._unsynced += 1
        if self._unsynced >= self.fsync_interval:
            self.sync()
        return len(encoded)

    def append_insert(self, seqno: int, items: Sequence[int]) -> int:
        """Append an INSERT record."""
        return self.append(
            WalRecord(
                seqno=seqno,
                op=OP_INSERT,
                items=np.asarray(items, dtype=np.int64),
            )
        )

    def append_delete(self, seqno: int, logical_tid: int) -> int:
        """Append a DELETE record."""
        return self.append(
            WalRecord(seqno=seqno, op=OP_DELETE, logical_tid=int(logical_tid))
        )

    def sync(self) -> None:
        """fsync pending appends to the platter."""
        if self._unsynced == 0:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.counters.fsyncs += 1
        self._unsynced = 0

    def reset(self) -> None:
        """Atomically truncate the log to empty (post-checkpoint).

        Writes an empty temporary file and renames it over the log, so a
        crash leaves either the full old log (whose records the fresh
        checkpoint supersedes by sequence number) or the empty new one —
        never a half-truncated file.
        """
        self.close()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self.counters.fsyncs += 1
        self._handle = open(self.path, "ab")
        self._unsynced = 0

    def close(self) -> None:
        """Sync and close the file handle (idempotent)."""
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
