"""Bounded idempotency-key dedupe table for live-index mutations.

A retrying client stamps every mutation with ``(client_id, request_id)``
(the request_id monotonically increasing per client).  The live index
consults this table *before* logging a keyed mutation: a hit means the
op was already applied — the cached result is returned and nothing is
re-applied or re-logged, which is what makes retry-after-ambiguous-ack
safe (a second ``delete tid=7`` would otherwise delete whichever row
*now* lives at logical tid 7).

Durability: entries are **not** separately persisted on every write —
each keyed WAL record carries its own key, so WAL replay rebuilds the
table exactly (see :meth:`~repro.live.index.LiveIndex.recover`).  When
a checkpoint truncates the WAL, the index snapshots the table alongside
(:meth:`to_json` / :meth:`from_json`) so exactly-once survives
checkpoint + crash + recovery too.

Bounds: at most ``max_entries_per_client`` recent request_ids per client
(oldest evicted first) and at most ``max_clients`` clients (least
recently *used* evicted first).  The protocol's one-outstanding-request-
per-connection clients only ever retry their newest request_id, so the
bounds are safety valves, not correctness limits — but an eviction is
counted (:attr:`evictions`) so a chaos run can prove it never relied on
an evicted entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple


class DedupeTable:
    """Maps ``(client_id, request_id)`` to the mutation's cached result.

    Cached results are small JSON-safe dicts (``{"tid": 17}`` for an
    insert, ``{"deleted": 4}`` for a delete).  Thread-safe; the live
    index calls it under its mutation lock but recovery and tests may
    poke it directly.
    """

    def __init__(
        self, max_clients: int = 1024, max_entries_per_client: int = 256
    ) -> None:
        if max_clients < 1 or max_entries_per_client < 1:
            raise ValueError("dedupe bounds must be >= 1")
        self.max_clients = int(max_clients)
        self.max_entries_per_client = int(max_entries_per_client)
        self._lock = threading.Lock()
        # client_id -> (request_id -> result), both LRU-ordered.
        self._clients: "OrderedDict[str, OrderedDict[int, Dict[str, object]]]"
        self._clients = OrderedDict()
        #: Lifetime counters (metrics + chaos assertions).
        self.hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return sum(len(entries) for entries in self._clients.values())

    @property
    def num_clients(self) -> int:
        with self._lock:
            return len(self._clients)

    def lookup(
        self, client_id: str, request_id: int
    ) -> Optional[Dict[str, object]]:
        """The cached result for a key, or ``None`` on first sight."""
        with self._lock:
            entries = self._clients.get(client_id)
            if entries is None:
                return None
            self._clients.move_to_end(client_id)
            result = entries.get(int(request_id))
            if result is not None:
                self.hits += 1
                return dict(result)
            return None

    def record(
        self, client_id: str, request_id: int, result: Dict[str, object]
    ) -> None:
        """Remember a completed mutation's result (idempotent)."""
        with self._lock:
            entries = self._clients.get(client_id)
            if entries is None:
                entries = self._clients[client_id] = OrderedDict()
                while len(self._clients) > self.max_clients:
                    self._clients.popitem(last=False)
                    self.evictions += 1
            else:
                self._clients.move_to_end(client_id)
            entries[int(request_id)] = dict(result)
            entries.move_to_end(int(request_id))
            while len(entries) > self.max_entries_per_client:
                entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._clients.clear()

    # ------------------------------------------------------------------
    # Checkpoint persistence
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        """JSON-safe snapshot (order-preserving, inverse of :meth:`from_json`)."""
        with self._lock:
            return {
                "max_clients": self.max_clients,
                "max_entries_per_client": self.max_entries_per_client,
                "clients": {
                    client_id: [
                        [int(request_id), dict(result)]
                        for request_id, result in entries.items()
                    ]
                    for client_id, entries in self._clients.items()
                },
            }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "DedupeTable":
        table = cls(
            max_clients=int(data.get("max_clients", 1024)),
            max_entries_per_client=int(data.get("max_entries_per_client", 256)),
        )
        for client_id, entries in dict(data.get("clients", {})).items():
            for request_id, result in entries:
                table.record(str(client_id), int(request_id), dict(result))
        # Replaying a snapshot is bookkeeping, not traffic.
        table.hits = 0
        table.evictions = 0
        return table

    def merge_snapshot(self, data: Dict[str, object]) -> None:
        """Fold a checkpoint snapshot in underneath newer WAL entries."""
        for client_id, entries in dict(data.get("clients", {})).items():
            for request_id, result in entries:
                if self.lookup(str(client_id), int(request_id)) is None:
                    self.record(str(client_id), int(request_id), dict(result))
