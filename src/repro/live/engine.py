"""Batch-execution adapter from the query service to a live index.

The TCP service's micro-batcher (:mod:`repro.service.batcher`) needs
only one engine hook — ``run_batch(key, similarity, targets)`` — so a
:class:`LiveQueryEngine` wrapping a :class:`~repro.live.index.LiveIndex`
drops into :class:`~repro.service.server.QueryServer` exactly where a
frozen :class:`~repro.core.engine.QueryEngine` would.  Each target in a
coalesced batch runs against one consistent snapshot of the live state
(the snapshot is taken per target, so a batch interleaved with inserts
observes each mutation atomically, never half of one).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.core.engine import BatchKey, similarity_key
from repro.core.search import Neighbor, SearchStats
from repro.core.similarity import SimilarityFunction
from repro.live.index import LiveIndex


class LiveQueryEngine:
    """Serve coalesced service batches from a :class:`LiveIndex`."""

    def __init__(self, index: LiveIndex) -> None:
        self.index = index

    def describe(self) -> dict:
        """JSON-safe description for the service ``stats`` endpoint."""
        return self.index.describe()

    @property
    def supports_lsh_tier(self) -> bool:
        """Whether ``candidate_tier="lsh"`` batches can run here."""
        return self.index.sketch_enabled

    def run_batch(
        self,
        key: BatchKey,
        similarity: SimilarityFunction,
        targets: Sequence[Iterable[int]],
        workers=None,
    ) -> Tuple[List[List[Neighbor]], List[SearchStats]]:
        """Execute one coalesced batch against the live index.

        Matches the :meth:`QueryEngine.run_batch
        <repro.core.engine.QueryEngine.run_batch>` contract (``workers``
        is accepted for signature compatibility; live batches run
        sequentially — the base searcher already parallelises nothing
        per query and the delta scan is memory-resident).
        """
        if similarity_key(similarity) != key.similarity:
            raise ValueError(
                f"similarity {similarity_key(similarity)!r} does not match "
                f"batch key {key.similarity!r}"
            )
        del workers
        results: List[List[Neighbor]] = []
        stats: List[SearchStats] = []
        if key.op == "knn":
            for target in targets:
                neighbors, one = self.index.knn(
                    target,
                    similarity,
                    k=key.k,
                    early_termination=key.early_termination,
                    guarantee_tolerance=key.guarantee_tolerance,
                    sort_by=key.sort_by,
                    candidate_tier=key.candidate_tier,
                    target_recall=key.target_recall,
                )
                results.append(neighbors)
                stats.append(one)
        elif key.op == "range":
            for target in targets:
                neighbors, one = self.index.range_query(
                    target,
                    similarity,
                    key.threshold,
                    candidate_tier=key.candidate_tier,
                    target_recall=key.target_recall,
                )
                results.append(neighbors)
                stats.append(one)
        else:  # pragma: no cover - batch_key rejects unknown ops
            raise ValueError(f"unknown batch op {key.op!r}")
        return results, stats
