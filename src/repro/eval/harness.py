"""Experiment runners for every figure and table of the paper.

Scale profiles
--------------
The paper evaluates at up to 800 000 transactions.  All runners work at any
scale; the profile (chosen via the ``REPRO_PROFILE`` environment variable)
fixes the sweep sizes:

* ``quick`` (default) — minutes on a laptop: databases of 5 K–40 K
  transactions, 60 queries per point.
* ``paper`` — the paper's scale: 100 K–800 K transactions, 100 queries per
  point.  Same code paths, just bigger sweeps.

Shared state
------------
:class:`ExperimentContext` memoises datasets (in memory and optionally on
disk), signature schemes and signature tables, so that the hamming /
match-ratio / cosine figure families run against the *same physical
tables* — reproducing the paper's demonstration that one index serves any
query-time similarity function ("for a given set of data, exactly the same
signature table was used in order to test all the three similarity
functions").

Queries are held-out transactions drawn from the same generator (the same
consumer-behaviour pattern pool) as the indexed data.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.inverted import InvertedIndex
from repro.baselines.linear_scan import LinearScanIndex
from repro.core.engine import QueryEngine, summarise_stats
from repro.core.partitioning import (
    balanced_support_partition,
    partition_items,
    random_partition,
)
from repro.core.search import SignatureTableSearcher
from repro.core.signature import SignatureScheme
from repro.core.similarity import SimilarityFunction
from repro.core.table import SignatureTable
from repro.data.generator import MarketBasketGenerator, parse_spec
from repro.data.transaction import TransactionDatabase
from repro.eval.metrics import accuracy_against_truth
from repro.eval.reporting import ExperimentTable

#: Sweep definitions per scale profile.
PROFILES: Dict[str, Dict] = {
    "quick": {
        "db_sizes": [5_000, 10_000, 20_000, 40_000],
        "large_spec": "T10.I6.D40K",
        "txn_size_db": 30_000,
        "ks": [13, 14, 15],
        "default_k": 15,
        "txn_sizes": [5.0, 7.5, 10.0, 12.5, 15.0],
        "termination_levels": [0.002, 0.005, 0.01, 0.02],
        "num_queries": 60,
        "seed": 1999,
    },
    "paper": {
        "db_sizes": [100_000, 200_000, 400_000, 800_000],
        "large_spec": "T10.I6.D800K",
        "txn_size_db": 800_000,
        "ks": [13, 14, 15],
        "default_k": 15,
        "txn_sizes": [5.0, 7.5, 10.0, 12.5, 15.0],
        "termination_levels": [0.002, 0.005, 0.01, 0.02],
        "num_queries": 100,
        "seed": 1999,
    },
}


def active_profile() -> str:
    """The profile selected by ``REPRO_PROFILE`` (default ``quick``)."""
    name = os.environ.get("REPRO_PROFILE", "quick")
    if name not in PROFILES:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown REPRO_PROFILE {name!r}; known: {known}")
    return name


class ExperimentContext:
    """Memoised datasets, schemes, tables and ground truths for experiments.

    Parameters
    ----------
    profile:
        Profile name (defaults to :func:`active_profile`).
    overrides:
        Individual profile fields to replace, e.g.
        ``ExperimentContext("quick", num_queries=20)``.
    """

    def __init__(self, profile: Optional[str] = None, **overrides) -> None:
        self.profile_name = profile or active_profile()
        self.profile = dict(PROFILES[self.profile_name])
        unknown = set(overrides) - set(self.profile)
        if unknown:
            raise ValueError(f"unknown profile overrides: {sorted(unknown)}")
        self.profile.update(overrides)
        self.seed = int(self.profile["seed"])
        self.num_queries = int(self.profile["num_queries"])
        self._databases: Dict[str, Tuple[TransactionDatabase, TransactionDatabase]] = {}
        self._schemes: Dict[Tuple[str, int], SignatureScheme] = {}
        self._tables: Dict[Tuple[str, int, int], SignatureTable] = {}
        self._searchers: Dict[Tuple[str, int, int], SignatureTableSearcher] = {}
        self._scans: Dict[str, LinearScanIndex] = {}
        self._truths: Dict[Tuple[str, str], List[float]] = {}
        self._engines: Dict[Tuple[str, int, int], QueryEngine] = {}

    # ------------------------------------------------------------------
    def database(self, spec: str) -> Tuple[TransactionDatabase, TransactionDatabase]:
        """Return ``(indexed, holdout_queries)`` for a dataset spec.

        The holdout contains ``num_queries`` extra transactions from the
        same generator, so query targets follow the data distribution.
        """
        if spec not in self._databases:
            config = parse_spec(spec, seed=self.seed)
            generator = MarketBasketGenerator(config)
            indexed = generator.generate()
            holdout = generator.generate(num_transactions=self.num_queries)
            self._databases[spec] = (indexed, holdout)
        return self._databases[spec]

    def scheme(self, spec: str, num_signatures: int) -> SignatureScheme:
        key = (spec, num_signatures)
        if key not in self._schemes:
            indexed, _ = self.database(spec)
            self._schemes[key] = partition_items(
                indexed,
                num_signatures=num_signatures,
                max_transactions=50_000,
                rng=self.seed,
            )
        return self._schemes[key]

    def searcher(
        self, spec: str, num_signatures: int, activation_threshold: int = 1
    ) -> SignatureTableSearcher:
        key = (spec, num_signatures, activation_threshold)
        if key not in self._searchers:
            indexed, _ = self.database(spec)
            scheme = self.scheme(spec, num_signatures)
            if activation_threshold != 1:
                scheme = scheme.with_activation_threshold(activation_threshold)
            table = SignatureTable.build(indexed, scheme)
            self._tables[key] = table
            self._searchers[key] = SignatureTableSearcher(table, indexed)
        return self._searchers[key]

    def engine(
        self,
        spec: str,
        num_signatures: int,
        activation_threshold: int = 1,
        workers: int = 1,
    ) -> QueryEngine:
        """A batched :class:`QueryEngine` over the memoised searcher.

        The engine is memoised per table (not per worker count); the
        ``workers`` argument only sets its default process count.
        """
        key = (spec, num_signatures, activation_threshold)
        if key not in self._engines:
            self._engines[key] = QueryEngine(
                self.searcher(spec, num_signatures, activation_threshold)
            )
        engine = self._engines[key]
        if engine.workers != workers:
            engine = QueryEngine(engine.searcher, workers=workers)
            self._engines[key] = engine
        return engine

    def scan(self, spec: str) -> LinearScanIndex:
        if spec not in self._scans:
            indexed, _ = self.database(spec)
            self._scans[spec] = LinearScanIndex(indexed)
        return self._scans[spec]

    def queries(self, spec: str) -> List[List[int]]:
        """The query targets (holdout transactions) for a spec."""
        _, holdout = self.database(spec)
        return [sorted(holdout[q]) for q in range(len(holdout))]

    def truths(self, spec: str, similarity: SimilarityFunction) -> List[float]:
        """Ground-truth optimal similarity per query (linear scan)."""
        key = (spec, _similarity_key(similarity))
        if key not in self._truths:
            scan = self.scan(spec)
            self._truths[key] = [
                scan.best_similarity(target, similarity)
                for target in self.queries(spec)
            ]
        return self._truths[key]

    def notes(self, extra: Sequence[str] = ()) -> List[str]:
        base = [
            f"profile={self.profile_name}",
            f"seed={self.seed}",
            f"queries_per_point={self.num_queries}",
        ]
        return base + list(extra)


def _similarity_key(similarity: SimilarityFunction) -> str:
    return f"{similarity.name}:{repr(similarity)}"


# ----------------------------------------------------------------------
# Figure families (Figs 6-14)
# ----------------------------------------------------------------------
def run_pruning_vs_db_size(
    similarity: SimilarityFunction,
    ctx: ExperimentContext,
    base: str = "T10.I6",
    db_sizes: Optional[Sequence[int]] = None,
    ks: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Pruning efficiency vs database size (Figures 6 / 9 / 12).

    For each database size and signature cardinality K, runs every query
    to completion and averages
    :attr:`~repro.core.search.SearchStats.pruning_efficiency`.
    """
    db_sizes = list(db_sizes or ctx.profile["db_sizes"])
    ks = list(ks or ctx.profile["ks"])
    table = ExperimentTable(
        title=f"Pruning efficiency vs database size — {similarity.name} "
        f"({base}.Dx)",
        columns=["db_size"] + [f"K={k} prune%" for k in ks],
        notes=ctx.notes([f"similarity={similarity.name}"]),
    )
    for size in db_sizes:
        spec = f"{base}.D{size}"
        row: Dict[str, object] = {"db_size": size}
        for k in ks:
            searcher = ctx.searcher(spec, k)
            efficiencies = []
            for target in ctx.queries(spec):
                _, stats = searcher.nearest(target, similarity)
                efficiencies.append(stats.pruning_efficiency)
            row[f"K={k} prune%"] = float(np.mean(efficiencies))
        table.add_row(**row)
    return table


def run_accuracy_vs_termination(
    similarity: SimilarityFunction,
    ctx: ExperimentContext,
    spec: Optional[str] = None,
    ks: Optional[Sequence[int]] = None,
    levels: Optional[Sequence[float]] = None,
) -> ExperimentTable:
    """Accuracy vs early-termination level (Figures 7 / 10 / 13).

    Accuracy is the percentage of queries whose returned similarity equals
    the true optimum when the scan stops after the given fraction of the
    database.
    """
    spec = spec or ctx.profile["large_spec"]
    ks = list(ks or ctx.profile["ks"])
    levels = list(levels or ctx.profile["termination_levels"])
    truths = ctx.truths(spec, similarity)
    table = ExperimentTable(
        title=f"Accuracy vs early termination — {similarity.name} ({spec})",
        columns=["termination%"] + [f"K={k} acc%" for k in ks],
        notes=ctx.notes([f"similarity={similarity.name}", f"spec={spec}"]),
    )
    for level in levels:
        row: Dict[str, object] = {"termination%": 100.0 * level}
        for k in ks:
            searcher = ctx.searcher(spec, k)
            found = []
            for target in ctx.queries(spec):
                neighbor, _ = searcher.nearest(
                    target, similarity, early_termination=level
                )
                found.append(neighbor.similarity if neighbor else float("-inf"))
            row[f"K={k} acc%"] = accuracy_against_truth(found, truths)
        table.add_row(**row)
    return table


def run_accuracy_vs_transaction_size(
    similarity: SimilarityFunction,
    ctx: ExperimentContext,
    txn_sizes: Optional[Sequence[float]] = None,
    num_signatures: Optional[int] = None,
    termination: float = 0.02,
    pattern_size: float = 6.0,
    db_size: Optional[int] = None,
) -> ExperimentTable:
    """Accuracy vs average transaction size (Figures 8 / 11 / 14).

    Fixes the early-termination level (paper: 2 %) and sweeps the ``T``
    parameter of the generator; denser data makes the problem harder and
    accuracy is expected to fall.
    """
    txn_sizes = list(txn_sizes or ctx.profile["txn_sizes"])
    num_signatures = num_signatures or ctx.profile["default_k"]
    db_size = db_size or ctx.profile["txn_size_db"]
    table = ExperimentTable(
        title=(
            f"Accuracy vs avg transaction size — {similarity.name} "
            f"(Tx.I{pattern_size:g}.D{db_size}, termination "
            f"{100 * termination:g}%, K={num_signatures})"
        ),
        columns=["avg_txn_size", "accuracy%", "prune% (to completion)"],
        notes=ctx.notes([f"similarity={similarity.name}"]),
    )
    for t in txn_sizes:
        spec = f"T{t:g}.I{pattern_size:g}.D{db_size}"
        searcher = ctx.searcher(spec, num_signatures)
        truths = ctx.truths(spec, similarity)
        found = []
        efficiencies = []
        for target in ctx.queries(spec):
            neighbor, _ = searcher.nearest(
                target, similarity, early_termination=termination
            )
            found.append(neighbor.similarity if neighbor else float("-inf"))
            _, full_stats = searcher.nearest(target, similarity)
            efficiencies.append(full_stats.pruning_efficiency)
        table.add_row(
            avg_txn_size=t,
            **{
                "accuracy%": accuracy_against_truth(found, truths),
                "prune% (to completion)": float(np.mean(efficiencies)),
            },
        )
    return table


# ----------------------------------------------------------------------
# Table 1 (inverted index)
# ----------------------------------------------------------------------
def run_inverted_access_fractions(
    ctx: ExperimentContext,
    txn_sizes: Optional[Sequence[float]] = None,
    pattern_size: float = 6.0,
    db_size: Optional[int] = None,
) -> ExperimentTable:
    """Minimum percentage of transactions an inverted index must access
    (Table 1), plus the page-scattering column the paper discusses in
    prose: the percentage of *pages* those transactions occupy.
    """
    from repro.eval.model import (
        expected_inverted_access_fraction,
        predicted_page_fraction,
    )

    txn_sizes = list(txn_sizes or ctx.profile["txn_sizes"])
    db_size = db_size or ctx.profile["txn_size_db"]
    table = ExperimentTable(
        title=(
            f"Inverted index access fractions (Table 1) — "
            f"Tx.I{pattern_size:g}.D{db_size}"
        ),
        columns=[
            "avg_txn_size",
            "transactions accessed %",
            "analytic (independence) %",
            "pages touched %",
            "analytic pages %",
        ],
        notes=ctx.notes(
            ["analytic columns: independence model, see repro.eval.model"]
        ),
    )
    for t in txn_sizes:
        spec = f"T{t:g}.I{pattern_size:g}.D{db_size}"
        indexed, _ = ctx.database(spec)
        inverted = InvertedIndex(indexed)
        queries = ctx.queries(spec)
        access = []
        pages = []
        for target in queries:
            access.append(100.0 * inverted.access_fraction(target))
            pages.append(100.0 * inverted.page_fraction(target))
        analytic = 100.0 * expected_inverted_access_fraction(indexed, queries)
        analytic_pages = 100.0 * predicted_page_fraction(
            float(np.mean(access)) / 100.0,
            inverted.store.page_size,
            len(indexed),
        )
        table.add_row(
            avg_txn_size=t,
            **{
                "transactions accessed %": float(np.mean(access)),
                "analytic (independence) %": analytic,
                "pages touched %": float(np.mean(pages)),
                "analytic pages %": analytic_pages,
            },
        )
    return table


# ----------------------------------------------------------------------
# Ablations (design choices the paper calls out)
# ----------------------------------------------------------------------
def run_ablation_partitioning(
    similarity: SimilarityFunction,
    ctx: ExperimentContext,
    spec: Optional[str] = None,
    num_signatures: Optional[int] = None,
    termination: float = 0.02,
) -> ExperimentTable:
    """Correlation-aware vs random vs balanced-support partitioning.

    Quantifies Section 3.1's motivation: signatures of correlated items
    should prune better than correlation-blind partitions of the same K.
    """
    spec = spec or ctx.profile["large_spec"]
    num_signatures = num_signatures or ctx.profile["default_k"]
    indexed, _ = ctx.database(spec)
    schemes = {
        "correlation (paper)": ctx.scheme(spec, num_signatures),
        "random": random_partition(
            indexed.universe_size, num_signatures, rng=ctx.seed
        ),
        "balanced-support": balanced_support_partition(
            indexed.item_supports(), num_signatures
        ),
    }
    truths = ctx.truths(spec, similarity)
    table = ExperimentTable(
        title=f"Partitioning ablation — {similarity.name} ({spec}, K={num_signatures})",
        columns=["partitioning", "prune%", f"acc% @ {100 * termination:g}%"],
        notes=ctx.notes([f"similarity={similarity.name}"]),
    )
    for label, scheme in schemes.items():
        searcher = SignatureTableSearcher(
            SignatureTable.build(indexed, scheme), indexed
        )
        efficiencies = []
        found = []
        for target in ctx.queries(spec):
            _, stats = searcher.nearest(target, similarity)
            efficiencies.append(stats.pruning_efficiency)
            neighbor, _ = searcher.nearest(
                target, similarity, early_termination=termination
            )
            found.append(neighbor.similarity if neighbor else float("-inf"))
        table.add_row(
            partitioning=label,
            **{
                "prune%": float(np.mean(efficiencies)),
                f"acc% @ {100 * termination:g}%": accuracy_against_truth(
                    found, truths
                ),
            },
        )
    return table


def run_ablation_activation_threshold(
    similarity: SimilarityFunction,
    ctx: ExperimentContext,
    spec: Optional[str] = None,
    num_signatures: Optional[int] = None,
    thresholds: Sequence[int] = (1, 2, 3),
    termination: float = 0.02,
) -> ExperimentTable:
    """Effect of the activation threshold ``r`` (paper footnote 4).

    The paper fixes r = 1 but observes that larger transactions benefit
    from higher thresholds; this runner measures that trade-off on one
    dataset.
    """
    spec = spec or ctx.profile["large_spec"]
    num_signatures = num_signatures or ctx.profile["default_k"]
    truths = ctx.truths(spec, similarity)
    table = ExperimentTable(
        title=(
            f"Activation-threshold ablation — {similarity.name} "
            f"({spec}, K={num_signatures})"
        ),
        columns=["r", "prune%", f"acc% @ {100 * termination:g}%", "occupied entries"],
        notes=ctx.notes([f"similarity={similarity.name}"]),
    )
    for r in thresholds:
        searcher = ctx.searcher(spec, num_signatures, activation_threshold=r)
        efficiencies = []
        found = []
        for target in ctx.queries(spec):
            _, stats = searcher.nearest(target, similarity)
            efficiencies.append(stats.pruning_efficiency)
            neighbor, _ = searcher.nearest(
                target, similarity, early_termination=termination
            )
            found.append(neighbor.similarity if neighbor else float("-inf"))
        table.add_row(
            r=r,
            **{
                "prune%": float(np.mean(efficiencies)),
                f"acc% @ {100 * termination:g}%": accuracy_against_truth(
                    found, truths
                ),
                "occupied entries": searcher.table.num_entries_occupied,
            },
        )
    return table


def run_ablation_sort_order(
    similarity: SimilarityFunction,
    ctx: ExperimentContext,
    spec: Optional[str] = None,
    num_signatures: Optional[int] = None,
    termination: float = 0.02,
) -> ExperimentTable:
    """Optimistic-bound sort vs supercoordinate-similarity sort (Section 4).

    The paper always sorts by optimistic bound but suggests the
    supercoordinate order "can improve the performance when the sort
    criterion is a better indication of the average case similarity".
    """
    spec = spec or ctx.profile["large_spec"]
    num_signatures = num_signatures or ctx.profile["default_k"]
    searcher = ctx.searcher(spec, num_signatures)
    truths = ctx.truths(spec, similarity)
    table = ExperimentTable(
        title=f"Sort-order ablation — {similarity.name} ({spec}, K={num_signatures})",
        columns=["sort_by", "prune%", f"acc% @ {100 * termination:g}%"],
        notes=ctx.notes([f"similarity={similarity.name}"]),
    )
    for mode in ("optimistic", "supercoordinate"):
        efficiencies = []
        found = []
        for target in ctx.queries(spec):
            _, stats = searcher.nearest(target, similarity, sort_by=mode)
            efficiencies.append(stats.pruning_efficiency)
            neighbor, _ = searcher.nearest(
                target, similarity, early_termination=termination, sort_by=mode
            )
            found.append(neighbor.similarity if neighbor else float("-inf"))
        table.add_row(
            sort_by=mode,
            **{
                "prune%": float(np.mean(efficiencies)),
                f"acc% @ {100 * termination:g}%": accuracy_against_truth(
                    found, truths
                ),
            },
        )
    return table


def run_memory_ablation(
    similarity: SimilarityFunction,
    ctx: ExperimentContext,
    spec: Optional[str] = None,
    ks: Sequence[int] = (8, 10, 12, 14, 16),
    termination: float = 0.02,
) -> ExperimentTable:
    """Memory availability vs performance (Section 5, evaluation axis 3).

    The dense directory costs ``8 * 2^K`` bytes of main memory; this sweep
    shows pruning and accuracy improving as memory (K) grows.
    """
    spec = spec or ctx.profile["large_spec"]
    truths = ctx.truths(spec, similarity)
    table = ExperimentTable(
        title=f"Memory-availability ablation — {similarity.name} ({spec})",
        columns=[
            "K",
            "directory KiB",
            "prune%",
            f"acc% @ {100 * termination:g}%",
        ],
        notes=ctx.notes([f"similarity={similarity.name}"]),
    )
    for k in ks:
        searcher = ctx.searcher(spec, k)
        efficiencies = []
        found = []
        for target in ctx.queries(spec):
            _, stats = searcher.nearest(target, similarity)
            efficiencies.append(stats.pruning_efficiency)
            neighbor, _ = searcher.nearest(
                target, similarity, early_termination=termination
            )
            found.append(neighbor.similarity if neighbor else float("-inf"))
        table.add_row(
            K=k,
            **{
                "directory KiB": searcher.table.memory_bytes(dense=True) / 1024.0,
                "prune%": float(np.mean(efficiencies)),
                f"acc% @ {100 * termination:g}%": accuracy_against_truth(
                    found, truths
                ),
            },
        )
    return table


# ----------------------------------------------------------------------
# Batched engine throughput (engineering extension)
# ----------------------------------------------------------------------
def run_batch_throughput(
    similarity: SimilarityFunction,
    ctx: ExperimentContext,
    spec: Optional[str] = None,
    num_signatures: Optional[int] = None,
    k: int = 10,
    batch_size: Optional[int] = None,
    workers_list: Sequence[int] = (1, 4),
    repeats: int = 1,
) -> ExperimentTable:
    """Queries/sec of the batched engine vs the sequential per-query loop.

    Every configuration is verified to return exactly the same neighbour
    lists and :class:`~repro.core.search.SearchStats` as the sequential
    baseline before its timing is reported, so the speedups are for
    *identical* answers.
    """
    spec = spec or ctx.profile["large_spec"]
    num_signatures = num_signatures or ctx.profile["default_k"]
    engine = ctx.engine(spec, num_signatures)
    searcher = engine.searcher
    queries = ctx.queries(spec)
    if batch_size is not None:
        queries = queries[:batch_size]
    table = ExperimentTable(
        title=(
            f"Batched engine throughput — {similarity.name} "
            f"({spec}, K={num_signatures}, k={k}, batch={len(queries)})"
        ),
        columns=[
            "mode",
            "queries/sec",
            "speedup",
            "entries scanned/query",
            "identical",
        ],
        notes=ctx.notes([f"similarity={similarity.name}"]),
    )

    def _timed(fn):
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - start)
        return out, best

    (baseline, base_elapsed) = _timed(
        lambda: [searcher.knn(q, similarity, k=k) for q in queries]
    )
    base_stats = [stats for _, stats in baseline]
    base_qps = len(queries) / base_elapsed
    summary = summarise_stats(base_stats)
    table.add_row(
        mode="sequential",
        **{
            "queries/sec": base_qps,
            "speedup": 1.0,
            "entries scanned/query": summary.mean_entries_scanned,
            "identical": "-",
        },
    )
    for workers in workers_list:
        (batch, elapsed) = _timed(
            lambda w=workers: engine.knn_batch(
                queries, similarity, k=k, workers=w
            )
        )
        results, stats = batch
        identical = results == [r for r, _ in baseline] and stats == base_stats
        summary = summarise_stats(stats)
        table.add_row(
            mode=f"batched (workers={workers})",
            **{
                "queries/sec": len(queries) / elapsed,
                "speedup": (len(queries) / elapsed) / base_qps,
                "entries scanned/query": summary.mean_entries_scanned,
                "identical": "yes" if identical else "NO",
            },
        )
    return table


def run_kernel_throughput(
    similarity: SimilarityFunction,
    ctx: ExperimentContext,
    spec: Optional[str] = None,
    num_signatures: Optional[int] = None,
    k: int = 10,
    batch_size: Optional[int] = None,
    repeats: int = 3,
) -> ExperimentTable:
    """Single-core queries/sec of the packed kernel vs the scalar path.

    Both engines run the *same* batch on one worker so the comparison
    isolates the :mod:`repro.core.kernels` bitset scan from
    multiprocessing effects.  The packed row only reports a timing after
    its neighbour lists and :class:`~repro.core.search.SearchStats` are
    verified byte-identical to the scalar engine's — the speedup is for
    identical answers, including the replayed IO counters.
    """
    from repro.core.engine import QueryEngine

    spec = spec or ctx.profile["large_spec"]
    num_signatures = num_signatures or ctx.profile["default_k"]
    searcher = ctx.searcher(spec, num_signatures)
    queries = ctx.queries(spec)
    if batch_size is not None:
        queries = queries[:batch_size]
    engines = {
        "python": QueryEngine(searcher, kernel="python"),
        "packed": QueryEngine(searcher, kernel="packed"),
    }
    table = ExperimentTable(
        title=(
            f"Kernel throughput — {similarity.name} "
            f"({spec}, K={num_signatures}, k={k}, batch={len(queries)})"
        ),
        columns=["kernel", "queries/sec", "speedup", "identical"],
        notes=ctx.notes(
            [f"similarity={similarity.name}", "single worker, best of "
             f"{max(1, repeats)} repeats"]
        ),
    )

    def _timed(engine):
        best = float("inf")
        out = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            out = engine.knn_batch(queries, similarity, k=k, workers=1)
            best = min(best, time.perf_counter() - start)
        return out, best

    (base_results, base_stats), base_elapsed = _timed(engines["python"])
    base_qps = len(queries) / base_elapsed
    table.add_row(
        kernel="python",
        **{"queries/sec": base_qps, "speedup": 1.0, "identical": "-"},
    )
    (results, stats), elapsed = _timed(engines["packed"])
    identical = results == base_results and stats == base_stats
    table.add_row(
        kernel="packed",
        **{
            "queries/sec": len(queries) / elapsed,
            "speedup": (len(queries) / elapsed) / base_qps,
            "identical": "yes" if identical else "NO",
        },
    )
    return table


# ----------------------------------------------------------------------
# Closed-loop serving load (the online front door, repro.service)
# ----------------------------------------------------------------------
def run_service_load(
    similarity_name: str,
    ctx: ExperimentContext,
    spec: Optional[str] = None,
    num_signatures: Optional[int] = None,
    k: int = 10,
    concurrency_list: Sequence[int] = (1, 8, 32),
    wait_ms_list: Sequence[float] = (2.0,),
    max_batch_size: int = 64,
    max_queue: int = 4096,
    total_requests: Optional[int] = None,
    retries: int = 0,
) -> ExperimentTable:
    """Serving throughput/latency vs client concurrency and batch window.

    Stands up a real :class:`~repro.service.server.QueryServer` (TCP, in
    a background thread) over the memoised engine, then drives it with
    closed-loop clients (:func:`repro.service.client.run_load`): each
    client keeps exactly one request in flight, so offered concurrency
    equals the number of clients.  The sequential baseline is the same
    request sequence through :meth:`SignatureTableSearcher.knn` one call
    at a time.

    Every row *verifies the differential guarantee in-run*: each
    response's neighbour list must be byte-identical to the batched
    engine's direct answer for that query (which the PR 1 differential
    suite pins to the single-query searcher), and a row only counts as
    ``identical`` when every request completed (no rejections).
    """
    from repro.core.similarity import get_similarity
    from repro.service.client import run_load
    from repro.service.metrics import percentile
    from repro.service.server import serve_in_background

    spec = spec or ctx.profile["large_spec"]
    num_signatures = num_signatures or ctx.profile["default_k"]
    similarity = get_similarity(similarity_name)
    engine = ctx.engine(spec, num_signatures)
    queries = ctx.queries(spec)
    requests = (
        max(2 * len(queries), 64) if total_requests is None else int(total_requests)
    )
    expected, _ = engine.knn_batch(queries, similarity, k=k)

    table = ExperimentTable(
        title=(
            f"Serving throughput vs concurrency — {similarity_name} "
            f"({spec}, K={num_signatures}, k={k}, {requests} requests/row)"
        ),
        columns=[
            "clients",
            "max_wait_ms",
            "req/sec",
            "speedup",
            "p50 ms",
            "p99 ms",
            "mean batch",
            "rejected",
            "identical",
        ],
        notes=ctx.notes(
            [
                f"similarity={similarity_name}",
                f"max_batch_size={max_batch_size}",
                "baseline: sequential single-query loop, same request mix",
            ]
        ),
    )

    sequence = [queries[i % len(queries)] for i in range(requests)]
    started = time.perf_counter()
    for target in sequence:
        engine.searcher.knn(target, similarity, k=k)
    base_elapsed = time.perf_counter() - started
    base_qps = requests / base_elapsed
    table.add_row(
        clients=0,
        **{
            "max_wait_ms": 0.0,
            "req/sec": base_qps,
            "speedup": 1.0,
            "p50 ms": 1000.0 * base_elapsed / requests,
            "p99 ms": 1000.0 * base_elapsed / requests,
            "mean batch": 1.0,
            "rejected": 0,
            "identical": "-",
        },
    )

    for wait_ms in wait_ms_list:
        for clients in concurrency_list:
            handle = serve_in_background(
                engine,
                max_batch_size=max_batch_size,
                max_wait_ms=wait_ms,
                max_queue=max_queue,
            )
            host, port = handle.address
            try:
                result = run_load(
                    host,
                    port,
                    queries,
                    similarity=similarity_name,
                    k=k,
                    concurrency=clients,
                    total_requests=requests,
                    retries=retries,
                )
                identical = result.completed == len(result.records) and all(
                    record.neighbors == expected[record.query_index]
                    for record in result.records
                    if record.error_code is None
                )
                mean_batch = handle.server.metrics.mean_batch_size()
            finally:
                handle.stop()
            latencies = result.latencies_ms() or [float("nan")]

            # percentile() reports None below two samples; tables want NaN.
            def _pct(fraction: float) -> float:
                value = percentile(latencies, fraction)
                return float("nan") if value is None else value

            table.add_row(
                clients=clients,
                **{
                    "max_wait_ms": float(wait_ms),
                    "req/sec": result.qps,
                    "speedup": result.qps / base_qps,
                    "p50 ms": _pct(0.50),
                    "p99 ms": _pct(0.99),
                    "mean batch": mean_batch,
                    "rejected": result.rejected,
                    "identical": "yes" if identical else "NO",
                },
            )
    return table


def run_wire_comparison(
    similarity_name: str,
    ctx: ExperimentContext,
    spec: Optional[str] = None,
    num_signatures: Optional[int] = None,
    k: int = 10,
    concurrency: int = 8,
    total_requests: Optional[int] = None,
    repeats: int = 3,
) -> ExperimentTable:
    """NDJSON vs binary-frame wire protocol against one live server.

    One :class:`~repro.service.server.QueryServer` serves both rows;
    only the client-side ``wire`` differs, so the delta is pure
    encode/decode + transport cost.  After one unmeasured warmup pass
    per wire, the repeats interleave the wires (so machine drift hits
    both equally) and each row keeps its lowest-p99 run (closed-loop
    latency tails are noisy).  Every request's neighbour list is
    verified byte-identical
    to the direct engine answer in-run — per :doc:`docs/wire`, the
    NDJSON float round-trip and the binary raw-double encoding must
    decode to the very same IEEE-754 values.
    """
    from repro.core.similarity import get_similarity
    from repro.service.client import run_load
    from repro.service.metrics import percentile
    from repro.service.server import serve_in_background

    spec = spec or ctx.profile["large_spec"]
    num_signatures = num_signatures or ctx.profile["default_k"]
    similarity = get_similarity(similarity_name)
    engine = ctx.engine(spec, num_signatures)
    queries = ctx.queries(spec)
    requests = (
        max(2 * len(queries), 64)
        if total_requests is None
        else int(total_requests)
    )
    expected, _ = engine.knn_batch(queries, similarity, k=k)

    table = ExperimentTable(
        title=(
            f"Wire protocol comparison — {similarity_name} "
            f"({spec}, K={num_signatures}, k={k}, {requests} requests/row, "
            f"concurrency {concurrency})"
        ),
        columns=["wire", "req/sec", "p50 ms", "p99 ms", "identical"],
        notes=ctx.notes(
            [
                f"similarity={similarity_name}",
                f"interleaved best-of-{max(1, repeats)} by p99, "
                "one shared server, warmup pass per wire",
            ]
        ),
    )
    handle = serve_in_background(engine)
    host, port = handle.address
    wires = ("ndjson", "binary")
    best: Dict[str, object] = {}
    best_p99: Dict[str, float] = {}
    try:
        for wire in wires:  # cold-start costs land here, unmeasured
            run_load(
                host,
                port,
                queries,
                similarity=similarity_name,
                k=k,
                concurrency=concurrency,
                total_requests=min(requests, 64),
                wire=wire,
            )
        for _ in range(max(1, repeats)):
            for wire in wires:
                result = run_load(
                    host,
                    port,
                    queries,
                    similarity=similarity_name,
                    k=k,
                    concurrency=concurrency,
                    total_requests=requests,
                    wire=wire,
                )
                if result.wire != wire:
                    raise RuntimeError(
                        f"negotiated {result.wire!r}, wanted {wire!r}"
                    )
                latencies = result.latencies_ms() or [float("nan")]
                p99 = percentile(latencies, 0.99)
                p99 = float("nan") if p99 is None else p99
                if wire not in best or p99 < best_p99[wire]:
                    best[wire], best_p99[wire] = result, p99
        for wire in wires:
            run = best[wire]
            identical = run.completed == len(run.records) and all(
                record.neighbors == expected[record.query_index]
                for record in run.records
                if record.error_code is None
            )
            latencies = run.latencies_ms() or [float("nan")]
            p50 = percentile(latencies, 0.50)
            table.add_row(
                wire=wire,
                **{
                    "req/sec": run.qps,
                    "p50 ms": float("nan") if p50 is None else p50,
                    "p99 ms": best_p99[wire],
                    "identical": "yes" if identical else "NO",
                },
            )
    finally:
        handle.stop()
    return table


def run_live_ingest(
    similarity_name: str,
    ctx: ExperimentContext,
    spec: Optional[str] = None,
    num_signatures: Optional[int] = None,
    k: int = 10,
    fsync_intervals: Sequence[int] = (1, 8, 64),
    delta_fractions: Sequence[float] = (0.0, 0.01, 0.05),
    ingest_rows: Optional[int] = None,
) -> ExperimentTable:
    """Live-index ingest throughput and query-latency overhead.

    Two sweeps in one table:

    * ``ingest`` rows — durable insert throughput into a fresh
      :class:`~repro.live.LiveIndex` while sweeping the WAL's
      ``fsync_interval`` (group commit), reporting inserts/sec and the
      WAL bytes/fsyncs actually paid;
    * ``query`` rows — mean exact-kNN latency with the delta holding
      {0%, 1%, 5%} of the base, against the same queries through a
      frozen fresh-built searcher over the identical logical database.
      Each row verifies in-run that live results are byte-identical to
      the fresh build (the differential guarantee).
    """
    import shutil
    import tempfile

    from repro.core.similarity import get_similarity
    from repro.live import LiveIndex

    spec = spec or ctx.profile["large_spec"]
    num_signatures = num_signatures or ctx.profile["default_k"]
    similarity = get_similarity(similarity_name)
    indexed, _ = ctx.database(spec)
    scheme = ctx.scheme(spec, num_signatures)
    queries = ctx.queries(spec)
    if ingest_rows is None:
        ingest_rows = max(64, len(indexed) // 20)

    config = parse_spec(spec, seed=ctx.seed + 1)
    extra = MarketBasketGenerator(config).generate(num_transactions=ingest_rows)
    extra_rows = [sorted(extra[i]) for i in range(len(extra))]

    table = ExperimentTable(
        title=(
            f"Live index: ingest throughput and query overhead — "
            f"{similarity_name} ({spec}, K={num_signatures}, k={k})"
        ),
        columns=[
            "phase",
            "fsync_interval",
            "delta %",
            "ops",
            "ops/sec",
            "mean ms",
            "wal KiB",
            "fsyncs",
            "vs frozen",
            "identical",
        ],
        notes=ctx.notes(
            [
                f"similarity={similarity_name}",
                "frozen baseline: fresh SignatureTable.build over the same rows",
                "identical: live kNN == fresh-build kNN, tids and floats",
            ]
        ),
    )

    workdir = tempfile.mkdtemp(prefix="repro-live-bench-")
    try:
        for interval in fsync_intervals:
            rows = extra_rows
            path = os.path.join(workdir, f"ingest-f{interval}")
            with LiveIndex.create(
                path, indexed, scheme=scheme, fsync_interval=interval
            ) as live:
                started = time.perf_counter()
                for items in rows:
                    live.insert(items)
                elapsed = time.perf_counter() - started
                table.add_row(
                    **{
                        "phase": "ingest",
                        "fsync_interval": interval,
                        "delta %": "",
                        "ops": len(rows),
                        "ops/sec": len(rows) / elapsed,
                        "mean ms": 1000.0 * elapsed / len(rows),
                        "wal KiB": live.wal.bytes_written / 1024.0,
                        "fsyncs": live.wal.counters.fsyncs,
                        "vs frozen": "",
                        "identical": "-",
                    }
                )
            shutil.rmtree(path, ignore_errors=True)

        for fraction in delta_fractions:
            num_delta = int(round(fraction * len(indexed)))
            path = os.path.join(workdir, f"query-d{num_delta}")
            with LiveIndex.create(path, indexed, scheme=scheme) as live:
                for items in extra_rows[:num_delta]:
                    live.insert(items)
                db = live.logical_db()
                frozen = SignatureTableSearcher(
                    SignatureTable.build(db, scheme), db
                )
                started = time.perf_counter()
                frozen_results = [
                    frozen.knn(target, similarity, k=k)[0] for target in queries
                ]
                frozen_elapsed = time.perf_counter() - started

                started = time.perf_counter()
                live_results = [
                    live.knn(target, similarity, k=k)[0] for target in queries
                ]
                live_elapsed = time.perf_counter() - started
                identical = all(
                    [(n.tid, n.similarity) for n in got]
                    == [(n.tid, n.similarity) for n in want]
                    for got, want in zip(live_results, frozen_results)
                )
                table.add_row(
                    **{
                        "phase": "query",
                        "fsync_interval": "",
                        "delta %": 100.0 * fraction,
                        "ops": len(queries),
                        "ops/sec": len(queries) / live_elapsed,
                        "mean ms": 1000.0 * live_elapsed / len(queries),
                        "wal KiB": "",
                        "fsyncs": "",
                        "vs frozen": live_elapsed / frozen_elapsed,
                        "identical": "yes" if identical else "NO",
                    }
                )
            shutil.rmtree(path, ignore_errors=True)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return table
