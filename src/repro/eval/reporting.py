"""Plain-text result tables.

Each experiment produces an :class:`ExperimentTable` — named columns plus
rows — rendered as an aligned text table that mirrors the axes of the
paper's figure, and saved under ``results/`` so EXPERIMENTS.md can quote
the measured numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

PathLike = Union[str, os.PathLike]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class ExperimentTable:
    """A named table of experiment results.

    Attributes
    ----------
    title:
        Human-readable description, e.g. the paper figure it reproduces.
    columns:
        Column names, in display order.
    rows:
        One dict per row; missing keys render blank.
    notes:
        Free-form context lines (profile, seeds, scale caveats).
    """

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def to_text(self) -> str:
        """Render an aligned text table."""
        header = [str(c) for c in self.columns]
        body = [
            [_format_cell(row.get(c, "")) for c in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.extend(f"# {note}" for note in self.notes)
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()
        )
        lines.append("  ".join("-" * w for w in widths))
        for cells in body:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(cells, widths)).rstrip()
            )
        return "\n".join(lines) + "\n"

    def to_csv(self) -> str:
        """Render as CSV (comma-separated, header first)."""
        lines = [",".join(str(c) for c in self.columns)]
        for row in self.rows:
            lines.append(
                ",".join(_format_cell(row.get(c, "")) for c in self.columns)
            )
        return "\n".join(lines) + "\n"

    def save(self, directory: PathLike, name: str) -> Path:
        """Write both ``<name>.txt`` and ``<name>.csv``; returns the txt path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        txt_path = directory / f"{name}.txt"
        txt_path.write_text(self.to_text(), encoding="utf-8")
        (directory / f"{name}.csv").write_text(self.to_csv(), encoding="utf-8")
        return txt_path
