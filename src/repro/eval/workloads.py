"""Query workload generators.

The paper evaluates with targets drawn from the data distribution; real
deployments also see *perturbed* baskets (a customer similar-but-not-equal
to history) and occasionally adversarially random ones.  These generators
produce such workloads for the robustness benchmark:

* :func:`holdout_targets` — held-out transactions from the same generator
  (the paper's setting, in effect).
* :func:`perturbed_targets` — database transactions with items dropped
  and/or random items added at given rates.
* :func:`random_targets` — uniformly random item sets (worst case: no
  pattern structure at all).
* :func:`mixed_workload` — a labelled mixture of the above.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.data.transaction import TransactionDatabase
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_probability

Target = List[int]


def holdout_targets(
    holdout: TransactionDatabase, limit: int = None
) -> List[Target]:
    """Targets from a held-out database (sorted item lists)."""
    count = len(holdout) if limit is None else min(limit, len(holdout))
    return [sorted(holdout[q]) for q in range(count)]


def perturbed_targets(
    db: TransactionDatabase,
    count: int,
    drop_rate: float = 0.2,
    add_rate: float = 0.2,
    rng: RngLike = 0,
) -> List[Target]:
    """Database transactions with items dropped/added at the given rates.

    Parameters
    ----------
    drop_rate:
        Each item of the source transaction is dropped independently with
        this probability.
    add_rate:
        For each original item, a uniformly random universe item is added
        with this probability (models impulse purchases).
    """
    check_positive(count, "count")
    check_probability(drop_rate, "drop_rate")
    check_probability(add_rate, "add_rate")
    if len(db) == 0:
        raise ValueError("cannot perturb an empty database")
    generator = ensure_rng(rng)
    targets: List[Target] = []
    for tid in generator.integers(0, len(db), size=count):
        items = set(int(i) for i in db.items_of(int(tid)))
        original_size = len(items)
        kept = {
            item for item in items if generator.random() >= drop_rate
        }
        additions = {
            int(generator.integers(0, db.universe_size))
            for _ in range(original_size)
            if generator.random() < add_rate
        }
        target = sorted(kept | additions)
        if not target:
            target = [int(generator.integers(0, db.universe_size))]
        targets.append(target)
    return targets


def random_targets(
    universe_size: int,
    count: int,
    avg_size: float = 10.0,
    rng: RngLike = 0,
) -> List[Target]:
    """Uniformly random item sets (no pattern structure)."""
    check_positive(universe_size, "universe_size")
    check_positive(count, "count")
    check_positive(avg_size, "avg_size")
    generator = ensure_rng(rng)
    sizes = np.maximum(generator.poisson(avg_size, size=count), 1)
    sizes = np.minimum(sizes, universe_size)
    return [
        sorted(
            int(i)
            for i in generator.choice(universe_size, size=int(s), replace=False)
        )
        for s in sizes
    ]


def mixed_workload(
    db: TransactionDatabase,
    holdout: TransactionDatabase,
    count_per_kind: int = 20,
    rng: RngLike = 0,
) -> List[Tuple[str, Target]]:
    """A labelled mixture: holdout, lightly/heavily perturbed, random."""
    generator = ensure_rng(rng)
    seeds = generator.integers(0, 2**31, size=3)
    workload: List[Tuple[str, Target]] = []
    workload.extend(
        ("holdout", t) for t in holdout_targets(holdout, count_per_kind)
    )
    workload.extend(
        ("perturbed-light", t)
        for t in perturbed_targets(
            db, count_per_kind, drop_rate=0.1, add_rate=0.1, rng=int(seeds[0])
        )
    )
    workload.extend(
        ("perturbed-heavy", t)
        for t in perturbed_targets(
            db, count_per_kind, drop_rate=0.4, add_rate=0.4, rng=int(seeds[1])
        )
    )
    workload.extend(
        ("random", t)
        for t in random_targets(
            db.universe_size,
            count_per_kind,
            avg_size=db.avg_transaction_size,
            rng=int(seeds[2]),
        )
    )
    return workload
