"""Experiment harness.

Reproduces every table and figure of the paper's Section 5 (see the
per-experiment index in DESIGN.md):

* :mod:`repro.eval.metrics` — pruning efficiency, accuracy under early
  termination, recall.
* :mod:`repro.eval.harness` — the experiment runners
  (:func:`~repro.eval.harness.run_pruning_vs_db_size`, etc.) plus the
  dataset/table caches and the quick/paper scale profiles.
* :mod:`repro.eval.reporting` — plain-text result tables mirroring the
  paper's axes, written to ``results/``.
"""

from repro.eval.harness import (
    PROFILES,
    ExperimentContext,
    active_profile,
    run_accuracy_vs_termination,
    run_accuracy_vs_transaction_size,
    run_inverted_access_fractions,
    run_pruning_vs_db_size,
)
from repro.eval.metrics import accuracy_against_truth, recall_at_k
from repro.eval.model import (
    expected_inverted_access_fraction,
    expected_supercoordinate_bits,
    predicted_inverted_access_fraction,
    predicted_page_fraction,
)
from repro.eval.reporting import ExperimentTable
from repro.eval.workloads import (
    holdout_targets,
    mixed_workload,
    perturbed_targets,
    random_targets,
)

__all__ = [
    "ExperimentContext",
    "ExperimentTable",
    "PROFILES",
    "active_profile",
    "run_pruning_vs_db_size",
    "run_accuracy_vs_termination",
    "run_accuracy_vs_transaction_size",
    "run_inverted_access_fractions",
    "accuracy_against_truth",
    "recall_at_k",
    "predicted_inverted_access_fraction",
    "expected_inverted_access_fraction",
    "predicted_page_fraction",
    "expected_supercoordinate_bits",
    "holdout_targets",
    "perturbed_targets",
    "random_targets",
    "mixed_workload",
]
