"""Evaluation metrics (Section 5's two performance functions).

* **Pruning efficiency** — the percentage of the database pruned by the
  branch-and-bound technique when run to completion.  Computed per query
  by :class:`~repro.core.search.SearchStats`; aggregated here.
* **Accuracy** — the percentage of queries for which the nearest neighbour
  was found when the search is cut off after a fixed fraction of the data.
  "Found" means the returned similarity *value* equals the true optimum:
  market-basket data contains duplicate transactions, so TID equality
  would under-count genuinely optimal answers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

_VALUE_TOLERANCE = 1e-9


def values_match(found: float, truth: float, tolerance: float = _VALUE_TOLERANCE) -> bool:
    """Whether a returned similarity equals the ground-truth optimum.

    Handles the ``+inf`` values produced by unsmoothed similarity
    functions on exact duplicates.
    """
    if np.isinf(truth) or np.isinf(found):
        return bool(found == truth)
    return bool(abs(found - truth) <= tolerance * max(1.0, abs(truth)))


def accuracy_against_truth(
    found_values: Sequence[float],
    true_values: Sequence[float],
    tolerance: float = _VALUE_TOLERANCE,
) -> float:
    """Percentage of queries whose answer value matches the optimum."""
    if len(found_values) != len(true_values):
        raise ValueError(
            f"got {len(found_values)} found values but {len(true_values)} truths"
        )
    if not found_values:
        return 0.0
    hits = sum(
        values_match(found, truth, tolerance)
        for found, truth in zip(found_values, true_values)
    )
    return 100.0 * hits / len(found_values)


def recall_at_k(found_tids: Iterable[int], true_tids: Iterable[int]) -> float:
    """Fraction of the true top-k TIDs present in the returned set.

    Used by the MinHash extension benchmark, where value equality is less
    informative than set overlap.
    """
    truth = set(true_tids)
    if not truth:
        return 1.0
    return len(truth & set(found_tids)) / len(truth)


def mean_and_std(values: Sequence[float]) -> tuple:
    """Convenience: ``(mean, std)`` with empty-input safety."""
    if not values:
        return 0.0, 0.0
    array = np.asarray(values, dtype=np.float64)
    return float(array.mean()), float(array.std())
