"""Analytical cost models.

Closed-form predictions that cross-check the measured experiment numbers:

* :func:`predicted_inverted_access_fraction` — under item independence,
  a transaction avoids a target iff it contains none of the target's
  items, so the inverted index's candidate fraction for target ``T`` is
  ``1 − Π_{i∈T}(1 − s_i)``.  Real data is positively correlated, so the
  measured fraction sits *below* this bound for pattern-mates but tracks
  its growth with the target size — the Table 1 benchmark reports both.
* :func:`predicted_page_fraction` — the page-scattering amplification:
  with ``c`` candidates uniformly scattered over ``P`` pages of ``m``
  records, the expected fraction of pages touched is
  ``1 − (1 − c/n)^m`` — the paper's "even if 5 % of the transactions …
  almost the entire database" effect in one line.
* :func:`expected_supercoordinate_bits` — expected number of signatures a
  random transaction activates, ``Σ_j P(|S_j ∩ T| ≥ r)`` under
  independence; the driver of table occupancy and bound tightness.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.signature import SignatureScheme
from repro.data.transaction import TransactionDatabase, as_item_array


def predicted_inverted_access_fraction(
    item_supports: np.ndarray, target: Iterable[int]
) -> float:
    """Independence-model candidate fraction of an inverted-index query."""
    supports = np.asarray(item_supports, dtype=np.float64)
    items = as_item_array(target, supports.size)
    if items.size == 0:
        return 0.0
    miss_probability = np.prod(1.0 - np.clip(supports[items], 0.0, 1.0))
    return float(1.0 - miss_probability)


def expected_inverted_access_fraction(
    db: TransactionDatabase,
    targets: Iterable[Iterable[int]],
) -> float:
    """Mean predicted access fraction over a target workload."""
    supports = db.item_supports(relative=True)
    predictions = [
        predicted_inverted_access_fraction(supports, target)
        for target in targets
    ]
    return float(np.mean(predictions)) if predictions else 0.0


def predicted_page_fraction(
    access_fraction: float, page_size: int, num_transactions: int
) -> float:
    """Expected fraction of pages touched by uniformly scattered candidates.

    With candidate fraction ``q`` and ``m = page_size`` records per page,
    a page is untouched only if all ``m`` of its records are
    non-candidates: probability ``(1 − q)^m``.
    """
    if num_transactions <= 0:
        return 0.0
    q = min(max(access_fraction, 0.0), 1.0)
    m = min(page_size, num_transactions)
    return float(1.0 - (1.0 - q) ** m)


def expected_supercoordinate_bits(
    scheme: SignatureScheme,
    item_supports: np.ndarray,
    transaction_size: int,
) -> float:
    """Expected number of activated signatures for a random transaction.

    Models a transaction as ``transaction_size`` independent item draws
    proportional to support; signature ``S_j`` is activated at level 1
    with probability ``1 − (1 − w_j)^size`` where ``w_j`` is the
    signature's share of the total support mass.  (For ``r > 1`` the
    binomial tail is used.)  A coarse model, but it captures why longer
    transactions activate more signatures — the paper's explanation of
    Figure 8's accuracy decay.
    """
    supports = np.asarray(item_supports, dtype=np.float64)
    masses = scheme.masses(supports)
    total = masses.sum()
    if total <= 0:
        return 0.0
    shares = masses / total
    r = scheme.activation_threshold
    size = int(transaction_size)
    if r == 1:
        active_probabilities = 1.0 - (1.0 - shares) ** size
    else:
        # P(Binomial(size, w) >= r) via the complementary CDF.
        from math import comb

        active_probabilities = np.zeros_like(shares)
        for j, w in enumerate(shares):
            tail = 0.0
            for successes in range(r, size + 1):
                tail += (
                    comb(size, successes)
                    * (w**successes)
                    * ((1.0 - w) ** (size - successes))
                )
            active_probabilities[j] = tail
    return float(active_probabilities.sum())
