"""Online query serving: async server, micro-batcher, metrics, client.

The serving subsystem keeps one batched engine
(:class:`~repro.core.engine.QueryEngine` or
:class:`~repro.core.engine.ShardedQueryEngine`) resident and exposes it
to concurrent clients over a newline-delimited-JSON TCP protocol:

* :mod:`repro.service.protocol` — the NDJSON wire format and error
  codes;
* :mod:`repro.service.frames` — the length-prefixed binary frame
  protocol a connection can negotiate instead (see ``docs/wire.md``);
* :mod:`repro.service.batcher` — dynamic micro-batching with admission
  control and per-request deadlines;
* :mod:`repro.service.metrics` — live counters behind the ``stats`` op;
* :mod:`repro.service.server` — the asyncio TCP server with graceful
  drain (and :func:`serve_in_background` for in-process harnesses);
* :mod:`repro.service.client` — a blocking client plus the closed-loop
  load generator.

Quickstart::

    engine = QueryEngine.for_table(table, db)
    handle = serve_in_background(engine, max_batch_size=32, max_wait_ms=2.0)
    host, port = handle.address
    with ServiceClient(host, port) as client:
        neighbors, stats = client.knn([3, 17, 42], "match_ratio", k=5)
    handle.stop()
"""

from repro.service.batcher import MicroBatcher
from repro.service.client import (
    LoadResult,
    RequestRecord,
    ServiceClient,
    ServiceError,
    run_load,
    wait_ready,
)
from repro.service.frames import FrameError
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import ProtocolError, QueryRequest
from repro.service.server import BackgroundServer, QueryServer, serve_in_background

__all__ = [
    "BackgroundServer",
    "FrameError",
    "LoadResult",
    "MicroBatcher",
    "ProtocolError",
    "QueryRequest",
    "QueryServer",
    "RequestRecord",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "run_load",
    "serve_in_background",
    "wait_ready",
]
