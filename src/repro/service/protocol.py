"""Wire protocol of the query service: newline-delimited JSON over TCP.

Each request is one JSON object on one line; each response is one JSON
object on one line carrying the request's ``id`` (responses may arrive
out of order — the micro-batcher completes requests as their batches
finish).  Floats round-trip exactly (Python's ``json`` serialises the
shortest ``repr`` that parses back to the same double), so similarity
values received over the wire are *byte-identical* to direct
:class:`~repro.core.engine.QueryEngine` calls.

Requests
--------
``{"id": 1, "op": "knn", "items": [3, 17], "similarity": "match_ratio",
"k": 5}`` — k-nearest-neighbour query.  Optional fields:
``early_termination`` (fraction of the database), ``sort_by``
(``optimistic``/``supercoordinate``), ``candidate_tier``
(``exact``/``lsh`` — the sketch prefilter of :mod:`repro.sketch`),
``target_recall`` (recall target for the lsh tier), ``timeout_ms``
(per-request deadline), ``trace`` (return the span tree inline),
``correlation_id``
(client-chosen id for cross-process log grep), ``trace_context``
(distributed-trace context a router stamps on scatter legs; see
:mod:`repro.obs.distributed`).

``{"id": 2, "op": "range", "items": [...], "similarity": "jaccard",
"threshold": 0.4}`` — range query (similarity >= threshold).

``{"id": 3, "op": "stats"}`` — live metrics snapshot (served inline,
never batched).  ``{"op": "ping"}`` — liveness probe.  ``{"op":
"health"}`` — readiness: ``{"ready": true, "degraded": false,
"draining": false}``; ``degraded`` means the durable write path failed
and mutations are being rejected ``unavailable`` while reads keep
serving.  ``{"op": "shutdown"}`` — ask the server to drain and exit
gracefully.  ``{"op": "hello", "wire": "binary"}`` — negotiate the
connection's wire protocol (must be the first request on the
connection; see :mod:`repro.service.frames` and :doc:`docs/wire`).

Mutations (live indexes only — see :doc:`docs/durability`)
----------------------------------------------------------
``{"id": 4, "op": "insert", "items": [3, 17, 40]}`` — durably insert a
transaction; responds ``{"ok": true, "tid": <logical tid>}`` once the
WAL append has been applied.  ``{"id": 5, "op": "delete", "tid": 12}``
— durably delete the transaction at a logical tid.  Both accept an
optional idempotency key (``"client_id": "c1", "request_id": 7``): a
retransmission of an already-applied key answers with the original
result and changes nothing (see :doc:`docs/resilience`).  ``{"op":
"compact"}`` (optional ``"repartition": true``) folds the delta and
tombstones into a fresh base segment; ``{"op": "checkpoint"}``
snapshots state and truncates the WAL without rebuilding.  A server
fronting a frozen (read-only) index rejects all four with
``bad_request``; during drain they are rejected with
``shutting_down`` like queries.

Responses
---------
``{"id": 1, "ok": true, "results": [{"tid": 7, "similarity": 0.8},
...], "stats": {...}}`` on success;
``{"id": 1, "ok": false, "error": {"code": "overloaded", "message":
"..."}}`` on failure.  Error codes are the :data:`ERROR_CODES`
constants; ``overloaded`` and ``shutting_down`` are *expected* under
load and clients should treat them as retryable backpressure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.engine import BatchKey, batch_key
from repro.core.search import Neighbor, SearchStats
from repro.core.similarity import (
    SIMILARITY_FUNCTIONS,
    SimilarityFunction,
    get_similarity,
)

#: Request operations understood by the server.
QUERY_OPS = ("knn", "range")
CONTROL_OPS = (
    "stats", "ping", "shutdown", "metrics", "health", "hello", "profile",
)
MUTATION_OPS = ("insert", "delete", "compact", "checkpoint")

#: Cluster operations (see :mod:`repro.cluster` and :doc:`docs/cluster`).
#: A plain single-node server rejects them ``bad_request``; cluster
#: nodes serve ``replicate``/``promote``/``role``/``rows``, the router
#: serves ``ring``/``rebalance``.
CLUSTER_OPS = ("replicate", "promote", "role", "rows", "ring", "rebalance")

#: Wire protocols a connection can negotiate with the ``hello`` op.
#: ``ndjson`` is the default and the differential oracle; ``binary`` is
#: the length-prefixed frame protocol of :mod:`repro.service.frames`.
WIRE_PROTOCOLS = ("ndjson", "binary")

#: Exposition formats the ``metrics`` control op accepts.
METRICS_FORMATS = ("json", "prometheus")

#: Scopes the ``metrics`` control op accepts: ``self`` (default) is the
#: serving process's own registry; ``cluster`` asks a router to
#: scatter-gather every node's registry and merge it exactly (see
#: :meth:`repro.obs.registry.MetricRegistry.merge`).
METRICS_SCOPES = ("self", "cluster")

#: Output formats the ``profile`` control op accepts (see
#: :mod:`repro.obs.profiler`).
PROFILE_FORMATS = ("folded", "json")

#: Upper bound on an idempotency-key client id, mirrored by the WAL.
MAX_CLIENT_ID_BYTES = 64

#: Structured error codes carried in ``error.code``.
ERROR_CODES = (
    "bad_request",     # malformed JSON / unknown op / invalid parameters
    "overloaded",      # admission control rejected the request (retryable)
    "timeout",         # the per-request deadline expired before completion
    "shutting_down",   # server is draining; no new queries admitted
    "unavailable",     # durable write path is degraded; retryable
    "internal",        # unexpected server-side failure
)


class ProtocolError(ValueError):
    """A request that cannot be served, with a structured error code."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class QueryRequest:
    """A parsed, validated query request.

    ``key`` is the normalised :class:`~repro.core.engine.BatchKey` the
    micro-batcher coalesces on and ``similarity`` the shared function
    instance; ``items`` is the target transaction.  ``timeout_ms`` is
    the client-requested deadline (``None`` means the server default).

    ``trace`` asks the server to return the request's span tree inline
    (observability; never changes results).  ``correlation_id`` is
    assigned by the *server* when it admits the request — unless the
    client (or an upstream router) supplied one, in which case that id
    is kept, so one id greps across every process a request touched.
    ``trace_context`` is the optional distributed-trace context an
    upstream router stamps on scatter legs
    (:class:`repro.obs.distributed.TraceContext` wire form); a sampled
    context implies tracing even without ``trace: true``.
    """

    id: object
    key: BatchKey
    similarity: SimilarityFunction
    items: List[int]
    timeout_ms: Optional[float] = None
    trace: bool = False
    correlation_id: Optional[str] = None
    trace_context: Optional[str] = None


def validate_request(message: object) -> Dict[str, object]:
    """Check a decoded request (any wire) is an object with a known op."""
    if not isinstance(message, dict):
        raise ProtocolError(
            "bad_request",
            f"request must be a JSON object, got {type(message).__name__}",
        )
    op = message.get("op")
    if op not in QUERY_OPS + CONTROL_OPS + MUTATION_OPS + CLUSTER_OPS:
        known = ", ".join(QUERY_OPS + CONTROL_OPS + MUTATION_OPS + CLUSTER_OPS)
        raise ProtocolError("bad_request", f"unknown op {op!r}; known: {known}")
    return message


def parse_request(line: str) -> Dict[str, object]:
    """Decode one request line to a dict, or raise :class:`ProtocolError`."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad_request", f"invalid JSON: {exc}") from None
    return validate_request(message)


def parse_query(message: Dict[str, object]) -> QueryRequest:
    """Validate a ``knn``/``range`` request dict into a :class:`QueryRequest`."""
    op = message["op"]
    items = message.get("items")
    if (
        not isinstance(items, list)
        or not items
        or not all(isinstance(i, int) and not isinstance(i, bool) for i in items)
    ):
        raise ProtocolError(
            "bad_request", "items must be a non-empty list of item ids"
        )
    name = message.get("similarity", "match_ratio")
    if name not in SIMILARITY_FUNCTIONS:
        known = ", ".join(sorted(SIMILARITY_FUNCTIONS))
        raise ProtocolError(
            "bad_request", f"unknown similarity {name!r}; known: {known}"
        )
    similarity = get_similarity(name)
    timeout_ms = message.get("timeout_ms")
    if timeout_ms is not None and (
        not isinstance(timeout_ms, (int, float)) or timeout_ms <= 0
    ):
        raise ProtocolError("bad_request", "timeout_ms must be a positive number")
    trace = message.get("trace", False)
    if not isinstance(trace, bool):
        raise ProtocolError("bad_request", "trace must be a boolean")
    correlation_id = message.get("correlation_id")
    if correlation_id is not None and (
        not isinstance(correlation_id, str)
        or not 0 < len(correlation_id) <= 64
    ):
        raise ProtocolError(
            "bad_request", "correlation_id must be a string of 1..64 chars"
        )
    trace_context = message.get("trace_context")
    if trace_context is not None:
        from repro.obs.distributed import TraceContext

        try:
            TraceContext.decode(trace_context)
        except ValueError as exc:
            raise ProtocolError("bad_request", str(exc)) from None
    candidate_tier = message.get("candidate_tier", "exact")
    if not isinstance(candidate_tier, str):
        raise ProtocolError("bad_request", "candidate_tier must be a string")
    target_recall = message.get("target_recall")
    if target_recall is not None and (
        not isinstance(target_recall, (int, float))
        or isinstance(target_recall, bool)
    ):
        raise ProtocolError("bad_request", "target_recall must be a number")
    try:
        key = batch_key(
            op,
            similarity,
            k=message.get("k"),
            threshold=message.get("threshold"),
            early_termination=message.get("early_termination"),
            sort_by=message.get("sort_by", "optimistic") if op == "knn" else None,
            candidate_tier=candidate_tier,
            target_recall=(
                None if target_recall is None else float(target_recall)
            ),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad_request", str(exc)) from None
    return QueryRequest(
        id=message.get("id"),
        key=key,
        similarity=similarity,
        items=[int(i) for i in items],
        timeout_ms=None if timeout_ms is None else float(timeout_ms),
        trace=trace,
        correlation_id=correlation_id,
        trace_context=trace_context,
    )


@dataclass(frozen=True)
class MutationRequest:
    """A parsed, validated mutation request (live indexes only).

    ``items`` is set for ``insert``, ``tid`` for ``delete`` and
    ``repartition`` for ``compact``; the other fields are ``None`` /
    ``False`` when they do not apply.  ``client_id``/``request_id`` are
    the optional idempotency key a retrying client stamps on
    ``insert``/``delete`` so a retransmission is applied exactly once.
    """

    id: object
    op: str
    items: Optional[List[int]] = None
    tid: Optional[int] = None
    repartition: bool = False
    client_id: Optional[str] = None
    request_id: Optional[int] = None


def _parse_idempotency_key(message: Dict[str, object]):
    """Validate the optional ``client_id``/``request_id`` pair."""
    client_id = message.get("client_id")
    request_id = message.get("request_id")
    if client_id is None and request_id is None:
        return None, None
    if client_id is None or request_id is None:
        raise ProtocolError(
            "bad_request",
            "client_id and request_id must be provided together",
        )
    if (
        not isinstance(client_id, str)
        or not 0 < len(client_id.encode("utf-8")) <= MAX_CLIENT_ID_BYTES
    ):
        raise ProtocolError(
            "bad_request",
            f"client_id must be a string of 1..{MAX_CLIENT_ID_BYTES} "
            "UTF-8 bytes",
        )
    if (
        not isinstance(request_id, int)
        or isinstance(request_id, bool)
        or request_id < 0
    ):
        raise ProtocolError(
            "bad_request", "request_id must be a non-negative integer"
        )
    return client_id, int(request_id)


def parse_mutation(message: Dict[str, object]) -> MutationRequest:
    """Validate a mutation request dict into a :class:`MutationRequest`."""
    op = message["op"]
    assert op in MUTATION_OPS, op
    request_id = message.get("id")
    client_id, idem_request_id = (
        _parse_idempotency_key(message) if op in ("insert", "delete") else (None, None)
    )
    if op == "insert":
        items = message.get("items")
        if (
            not isinstance(items, list)
            or not items
            or not all(
                isinstance(i, int) and not isinstance(i, bool) for i in items
            )
        ):
            raise ProtocolError(
                "bad_request", "items must be a non-empty list of item ids"
            )
        return MutationRequest(
            id=request_id,
            op=op,
            items=[int(i) for i in items],
            client_id=client_id,
            request_id=idem_request_id,
        )
    if op == "delete":
        tid = message.get("tid")
        if not isinstance(tid, int) or isinstance(tid, bool) or tid < 0:
            raise ProtocolError(
                "bad_request", "tid must be a non-negative integer logical tid"
            )
        return MutationRequest(
            id=request_id,
            op=op,
            tid=int(tid),
            client_id=client_id,
            request_id=idem_request_id,
        )
    if op == "compact":
        repartition = message.get("repartition", False)
        if not isinstance(repartition, bool):
            raise ProtocolError("bad_request", "repartition must be a boolean")
        return MutationRequest(id=request_id, op=op, repartition=repartition)
    return MutationRequest(id=request_id, op=op)  # checkpoint


# ----------------------------------------------------------------------
# Response encoding
# ----------------------------------------------------------------------
def encode_neighbors(neighbors: Sequence[Neighbor]) -> List[Dict[str, object]]:
    """JSON-safe neighbour list (tid + exact round-tripping similarity)."""
    return [
        {"tid": int(nb.tid), "similarity": float(nb.similarity)}
        for nb in neighbors
    ]


def decode_neighbors(payload: Sequence[Dict[str, object]]) -> List[Neighbor]:
    """Inverse of :func:`encode_neighbors`."""
    return [
        Neighbor(tid=int(entry["tid"]), similarity=float(entry["similarity"]))
        for entry in payload
    ]


def encode_search_stats(stats: SearchStats) -> Dict[str, object]:
    """The per-query counters a monitoring client cares about.

    Sketch-tier fields ride the wire only when a query actually ran
    lossy (``candidate_tier != "exact"``): exact responses stay
    byte-identical to the pre-sketch wire format.
    """
    payload = {
        "total_transactions": stats.total_transactions,
        "transactions_accessed": stats.transactions_accessed,
        "entries_scanned": stats.entries_scanned,
        "entries_pruned": stats.entries_pruned,
        "terminated_early": stats.terminated_early,
        "guaranteed_optimal": stats.guaranteed_optimal,
        "pages_read": stats.io.pages_read,
        "seeks": stats.io.seeks,
        "latency_ms": 1000.0 * stats.elapsed_seconds,
    }
    if stats.candidate_tier != "exact":
        payload["candidate_tier"] = stats.candidate_tier
        if stats.estimated_recall is not None:
            payload["estimated_recall"] = float(stats.estimated_recall)
        if stats.sketch_candidates is not None:
            payload["sketch_candidates"] = int(stats.sketch_candidates)
    return payload


def decode_search_stats(payload: Dict[str, object]) -> SearchStats:
    """Inverse of :func:`encode_search_stats` (best-effort).

    Rebuilds a real :class:`~repro.core.search.SearchStats` from the
    wire dict so scatter-gather callers (the cluster router) can merge
    per-shard stats with the same code path the in-process engines use.
    Fields the wire form does not carry (``entries_total``,
    ``entries_unexplored``, ``best_possible_remaining``) keep their
    defaults.
    """
    stats = SearchStats(total_transactions=int(payload.get("total_transactions", 0)))
    stats.transactions_accessed = int(payload.get("transactions_accessed", 0))
    stats.entries_scanned = int(payload.get("entries_scanned", 0))
    stats.entries_pruned = int(payload.get("entries_pruned", 0))
    stats.terminated_early = bool(payload.get("terminated_early", False))
    guaranteed = payload.get("guaranteed_optimal", True)
    stats.guaranteed_optimal = bool(True if guaranteed is None else guaranteed)
    stats.io.pages_read = int(payload.get("pages_read", 0))
    stats.io.seeks = int(payload.get("seeks", 0))
    stats.elapsed_seconds = float(payload.get("latency_ms", 0.0)) / 1000.0
    stats.candidate_tier = str(payload.get("candidate_tier", "exact"))
    if "estimated_recall" in payload:
        stats.estimated_recall = float(payload["estimated_recall"])
    if "sketch_candidates" in payload:
        stats.sketch_candidates = int(payload["sketch_candidates"])
    return stats


def ok_response(
    request_id: object, payload: Optional[Dict[str, object]] = None
) -> bytes:
    """Encode a success response line (trailing newline included)."""
    message: Dict[str, object] = {"id": request_id, "ok": True}
    if payload:
        message.update(payload)
    return (json.dumps(message) + "\n").encode("utf-8")


def error_response(request_id: object, code: str, message: str) -> bytes:
    """Encode a structured failure response line."""
    assert code in ERROR_CODES, code
    body = {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    return (json.dumps(body) + "\n").encode("utf-8")


def encode_request(message: Dict[str, object]) -> bytes:
    """Encode a request dict as one wire line (client side)."""
    return (json.dumps(message) + "\n").encode("utf-8")


def decode_response(line: str) -> Dict[str, object]:
    """Decode one response line (client side)."""
    message = json.loads(line)
    if not isinstance(message, dict) or "ok" not in message:
        raise ValueError(f"malformed response line: {line!r}")
    return message
