"""Retry backoff and circuit-breaker policies for the service path.

:class:`RetryPolicy` owns the *decision* side of client resilience: which
structured error codes are worth retrying, how long to back off before
attempt *n* (exponential with **full jitter** — each delay is drawn
uniformly from ``[0, min(max_delay, base * 2**n)]``, the standard cure
for retry synchronisation), and how much of the per-call deadline budget
is left.  The :class:`~repro.service.client.ServiceClient` owns the
*mechanics* (reconnecting, resending, idempotency keys).

:class:`CircuitBreaker` is the server-side guard for repeatedly failing
maintenance work (compaction): after ``failure_threshold`` consecutive
failures the breaker *opens* and callers fail fast with
:class:`CircuitOpenError`; after ``reset_timeout`` seconds one probe call
is let through (*half-open*) — success closes the breaker, failure
re-opens it for another timeout.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional, Tuple

#: Error codes a client may safely retry.  ``overloaded`` and
#: ``unavailable`` are transient by contract; ``shutting_down`` is not
#: (the server will not come back on this address).
RETRYABLE_CODES = ("overloaded", "unavailable")


class RetryPolicy:
    """Exponential backoff with full jitter and a deadline budget.

    Parameters
    ----------
    max_retries:
        Retries *after* the first attempt (0 disables retrying).
    base_delay, max_delay:
        Backoff bounds in seconds: attempt ``n`` (0-based) sleeps a
        uniform draw from ``[0, min(max_delay, base_delay * 2**n)]``.
    deadline:
        Optional per-call wall-clock budget in seconds, covering every
        attempt *and* every backoff sleep.  Once spent, no further
        retries happen (the last error surfaces).
    rng:
        Seeded :class:`random.Random` for deterministic tests; a fresh
        unseeded one by default.
    """

    def __init__(
        self,
        max_retries: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        deadline: Optional[float] = None,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        self.max_retries = int(max_retries)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.deadline = deadline
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock

    def start(self) -> Optional[float]:
        """Begin one call; returns its absolute deadline (or ``None``)."""
        if self.deadline is None:
            return None
        return self._clock() + self.deadline

    def backoff(self, attempt: int) -> float:
        """The jittered delay before retry ``attempt`` (0-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        return self._rng.uniform(0.0, ceiling)

    def should_retry(
        self, attempt: int, deadline_at: Optional[float]
    ) -> Tuple[bool, float]:
        """Whether retry ``attempt`` may run, and how long to sleep first.

        A retry is denied when the attempt budget is spent or when the
        backoff sleep would land past the call's deadline — better to
        surface the real error now than a deadline error later.
        """
        if attempt >= self.max_retries:
            return False, 0.0
        delay = self.backoff(attempt)
        if deadline_at is not None:
            remaining = deadline_at - self._clock()
            if remaining <= delay:
                return False, 0.0
        return True, delay

    @staticmethod
    def is_retryable_code(code: str) -> bool:
        """Whether a structured server error code is safely retryable."""
        return code in RETRYABLE_CODES


class CircuitOpenError(RuntimeError):
    """The breaker is open: the guarded operation fails fast."""

    def __init__(self, name: str, retry_after: float) -> None:
        super().__init__(
            f"{name} circuit breaker is open; retry in {retry_after:.1f}s"
        )
        self.retry_after = retry_after


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe. Thread-safe."""

    def __init__(
        self,
        name: str = "operation",
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        """``closed``, ``open`` or ``half_open``."""
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.reset_timeout:
                return "half_open"
            return "open"

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed.

        In the half-open state exactly one caller is admitted as the
        probe; concurrent callers keep failing fast until it reports.
        """
        with self._lock:
            if self._opened_at is None:
                return
            elapsed = self._clock() - self._opened_at
            if elapsed >= self.reset_timeout and not self._probing:
                self._probing = True  # this caller is the probe
                return
            raise CircuitOpenError(
                self.name, max(0.0, self.reset_timeout - elapsed)
            )

    def record_success(self) -> None:
        """The guarded operation succeeded: close and reset."""
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        """The guarded operation failed: count, maybe (re-)open."""
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
