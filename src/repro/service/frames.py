"""Length-prefixed binary frame protocol for the query service.

NDJSON (:mod:`repro.service.protocol`) stays the default wire and the
differential oracle, but parsing JSON is a measured per-request cost at
high qps.  A connection can negotiate this binary protocol instead by
sending ``{"op": "hello", "wire": "binary"}`` as its *first* request
(an NDJSON line); after the server's NDJSON acknowledgement, both
directions switch to frames.  Servers that predate the ``hello`` op
answer ``bad_request``, which a client treats as "fall back to NDJSON"
— see :doc:`docs/wire` for the negotiation rules.

Every frame is a fixed 7-byte header followed by a payload::

    >HBI   magic (0x5246 "RF") | frame type | payload length

The length is validated against :data:`MAX_FRAME_BYTES` *before* any
payload allocation, so a flipped length prefix can never request
gigabytes (the same regression the WAL codec fuzz pinned for varint
counts).  A bad header is unrecoverable — the stream can no longer be
resynchronised — so peers answer once (``bad_request``) and close; a bad
*payload* inside a well-formed frame leaves the stream aligned and only
fails that request.

Frame types
-----------
``FRAME_JSON``
    UTF-8 JSON object — any request or response that has no dedicated
    binary form (control ops, mutations, traced responses).  Semantics
    are exactly the NDJSON protocol's, minus the newline framing.
``FRAME_QUERY``
    A ``knn``/``range`` request packed with :mod:`struct`: fixed header
    (op, id, flags), similarity name, ``k`` or threshold, optional
    early-termination/timeout doubles, then the item ids as ``uint32``.
``FRAME_RESULT``
    A successful query response: request id, correlation id, neighbour
    ``(tid, similarity)`` pairs as raw ``int64``/IEEE-754 doubles — so
    similarity values are *byte-identical* to the engine's, with no
    text round-trip — and the fixed search-stats block.
``FRAME_ERROR``
    A structured failure: optional request id, an index into
    :data:`~repro.service.protocol.ERROR_CODES`, and the message.

All decode failures raise :class:`FrameError` (a ``ValueError``), never
a struct/unicode/key error — the corruption fuzz suite
(``tests/service/test_frames_fuzz.py``) holds the codec to that.
"""

from __future__ import annotations

import base64
import binascii
import json
import struct
from typing import Dict, List, Optional, Tuple

from repro.service.protocol import ERROR_CODES

#: First two header bytes of every frame ("RF", for repro frame).
MAGIC = 0x5246

#: ``>HBI`` — magic, frame type, payload length.
HEADER = struct.Struct(">HBI")

#: Hard cap on a frame payload; a length prefix beyond this is rejected
#: before any allocation happens.
MAX_FRAME_BYTES = 16 * 1024 * 1024

FRAME_JSON = 1
FRAME_QUERY = 2
FRAME_RESULT = 3
FRAME_ERROR = 4
#: Raw WAL record stream shipped from a shard owner to its replica.
FRAME_REPLICATE = 5

#: Every frame type either side may legally send.
FRAME_TYPES = (
    FRAME_JSON,
    FRAME_QUERY,
    FRAME_RESULT,
    FRAME_ERROR,
    FRAME_REPLICATE,
)

# Query-frame layout pieces.
_QUERY_FIXED = struct.Struct(">BqB")  # op, request id, flags
_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
# total_transactions, transactions_accessed, entries_scanned,
# entries_pruned, pages_read, seeks, latency_ms, terminated_early,
# guaranteed_optimal (0 = false, 1 = true, 2 = null).
_STATS = struct.Struct(">qqqqqqdBB")

_FLAG_EARLY_TERMINATION = 1
_FLAG_TIMEOUT = 2
_FLAG_TRACE = 4
_FLAG_SORT_SUPERCOORDINATE = 8
_FLAG_CORRELATION = 16

_OP_CODES = {"knn": 0, "range": 1}
_OP_NAMES = {code: name for name, code in _OP_CODES.items()}


class FrameError(ValueError):
    """A frame that cannot be decoded (bad header, truncated payload,
    out-of-range field, ...).  Maps to ``bad_request`` on the wire."""


# ----------------------------------------------------------------------
# Header
# ----------------------------------------------------------------------
def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """One complete frame: header + payload."""
    assert frame_type in FRAME_TYPES, frame_type
    assert len(payload) <= MAX_FRAME_BYTES, len(payload)
    return HEADER.pack(MAGIC, frame_type, len(payload)) + payload


def decode_header(header: bytes) -> Tuple[int, int]:
    """Validate a 7-byte header; returns ``(frame_type, payload_length)``.

    The length check happens here, before the caller reads (or
    allocates) a single payload byte.
    """
    if len(header) != HEADER.size:
        raise FrameError(
            f"frame header must be {HEADER.size} bytes, got {len(header)}"
        )
    magic, frame_type, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(
            f"bad frame magic 0x{magic:04x} (expected 0x{MAGIC:04x}); "
            "is the peer speaking NDJSON?"
        )
    if frame_type not in FRAME_TYPES:
        raise FrameError(f"unknown frame type {frame_type}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return frame_type, length


# ----------------------------------------------------------------------
# Decode-side cursor (every read is bounds-checked)
# ----------------------------------------------------------------------
class _Cursor:
    """Sequential bounds-checked reads over one payload."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def unpack(self, fmt: struct.Struct):
        end = self.offset + fmt.size
        if end > len(self.data):
            raise FrameError("truncated frame payload")
        values = fmt.unpack_from(self.data, self.offset)
        self.offset = end
        return values

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise FrameError("truncated frame payload")
        chunk = bytes(self.data[self.offset:end])
        self.offset = end
        return chunk

    def finish(self) -> None:
        if self.offset != len(self.data):
            raise FrameError(
                f"{len(self.data) - self.offset} trailing bytes after payload"
            )


def _utf8(raw: bytes, what: str) -> str:
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FrameError(f"{what} is not valid UTF-8: {exc}") from None


# ----------------------------------------------------------------------
# Query frames
# ----------------------------------------------------------------------
def encode_query(message: Dict[str, object]) -> bytes:
    """Pack a ``knn``/``range`` request dict into a QUERY payload.

    Raises :class:`ValueError` when the message has no binary form
    (non-integer id, oversized fields, ...) — callers fall back to a
    JSON frame, never fail the request.
    """
    op = message.get("op")
    if op not in _OP_CODES:
        raise ValueError(f"op {op!r} has no binary query form")
    if message.get("trace_context") is not None:
        # Distributed-trace contexts have no slot in the dense layout;
        # such requests ride a JSON frame on the binary wire (this is
        # the trace-context extension of the frame protocol — the
        # caller's FRAME_JSON fallback carries the field verbatim).
        raise ValueError("trace_context queries ride JSON frames")
    if (
        message.get("candidate_tier", "exact") != "exact"
        or message.get("target_recall") is not None
    ):
        # Sketch-tier knobs have no slot in the dense layout either;
        # lsh-tier requests ride JSON frames on the binary wire (same
        # extension mechanism as trace_context above).
        raise ValueError("sketch-tier queries ride JSON frames")
    request_id = message.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ValueError("binary query frames need an integer id")
    items = message.get("items")
    if not isinstance(items, list) or not all(
        isinstance(i, int) and not isinstance(i, bool) and 0 <= i < 2**32
        for i in items
    ):
        raise ValueError("items must be uint32 ids for a binary query frame")
    similarity = str(message.get("similarity", "match_ratio")).encode("utf-8")
    if len(similarity) > 255:
        raise ValueError("similarity name too long for a binary query frame")
    flags = 0
    tail: List[bytes] = []
    if message.get("early_termination") is not None:
        flags |= _FLAG_EARLY_TERMINATION
        tail.append(_F64.pack(float(message["early_termination"])))
    if message.get("timeout_ms") is not None:
        flags |= _FLAG_TIMEOUT
        tail.append(_F64.pack(float(message["timeout_ms"])))
    if message.get("correlation_id") is not None:
        correlation = str(message["correlation_id"]).encode("utf-8")
        if not 0 < len(correlation) <= 255:
            raise ValueError("correlation_id too long for a binary frame")
        flags |= _FLAG_CORRELATION
        tail.append(_U8.pack(len(correlation)))
        tail.append(correlation)
    if message.get("trace"):
        flags |= _FLAG_TRACE
    if op == "knn" and message.get("sort_by") == "supercoordinate":
        flags |= _FLAG_SORT_SUPERCOORDINATE
    if op == "knn":
        k = message.get("k")
        if not isinstance(k, int) or isinstance(k, bool) or not 0 < k < 2**32:
            raise ValueError("binary knn frames need a uint32 k")
        middle = _U32.pack(k)
    else:
        middle = _F64.pack(float(message.get("threshold", 0.0)))
    parts = [
        _QUERY_FIXED.pack(_OP_CODES[op], request_id, flags),
        _U8.pack(len(similarity)),
        similarity,
        middle,
        *tail,
        _U32.pack(len(items)),
        struct.pack(f">{len(items)}I", *items),
    ]
    return b"".join(parts)


def decode_query(payload: bytes) -> Dict[str, object]:
    """Inverse of :func:`encode_query`; returns the NDJSON-shaped dict."""
    cursor = _Cursor(payload)
    op_code, request_id, flags = cursor.unpack(_QUERY_FIXED)
    if op_code not in _OP_NAMES:
        raise FrameError(f"unknown query op code {op_code}")
    op = _OP_NAMES[op_code]
    (sim_len,) = cursor.unpack(_U8)
    similarity = _utf8(cursor.take(sim_len), "similarity name")
    message: Dict[str, object] = {
        "op": op,
        "id": request_id,
        "similarity": similarity,
    }
    if op == "knn":
        (k,) = cursor.unpack(_U32)
        message["k"] = k
        message["sort_by"] = (
            "supercoordinate"
            if flags & _FLAG_SORT_SUPERCOORDINATE
            else "optimistic"
        )
    else:
        (threshold,) = cursor.unpack(_F64)
        message["threshold"] = threshold
    if flags & _FLAG_EARLY_TERMINATION:
        (message["early_termination"],) = cursor.unpack(_F64)
    if flags & _FLAG_TIMEOUT:
        (message["timeout_ms"],) = cursor.unpack(_F64)
    if flags & _FLAG_CORRELATION:
        (cid_len,) = cursor.unpack(_U8)
        message["correlation_id"] = _utf8(cursor.take(cid_len), "correlation id")
    if flags & _FLAG_TRACE:
        message["trace"] = True
    (num_items,) = cursor.unpack(_U32)
    if num_items * 4 > len(payload) - cursor.offset:
        raise FrameError(
            f"item count {num_items} exceeds the remaining payload"
        )
    raw = cursor.take(4 * num_items)
    message["items"] = list(struct.unpack(f">{num_items}I", raw))
    cursor.finish()
    return message


# ----------------------------------------------------------------------
# Replicate frames (cluster WAL shipping)
# ----------------------------------------------------------------------
def encode_replicate(
    request_id: int, shard: str, wal_bytes: bytes
) -> bytes:
    """Pack a WAL shipment into a REPLICATE payload.

    The body after the shard name is the raw, already CRC-framed WAL
    record stream from :meth:`repro.live.wal.WriteAheadLog.read_tail` —
    reused verbatim so the replica applies exactly what the owner made
    durable, with no re-encoding step that could diverge.
    """
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ValueError("replicate frames need an integer id")
    shard_utf8 = str(shard).encode("utf-8")
    if not 0 < len(shard_utf8) <= 255:
        raise ValueError("shard name must encode to 1..255 UTF-8 bytes")
    return b"".join(
        (
            _I64.pack(request_id),
            _U8.pack(len(shard_utf8)),
            shard_utf8,
            bytes(wal_bytes),
        )
    )


def decode_replicate(payload: bytes) -> Dict[str, object]:
    """Inverse of :func:`encode_replicate`.

    Returns the request-shaped dict ``{"op": "replicate", "id": ...,
    "shard": ..., "wal": <raw bytes>}``.  The ``wal`` value is *bytes*,
    never JSON-serialised — this dict only travels server-internally.
    """
    cursor = _Cursor(payload)
    (request_id,) = cursor.unpack(_I64)
    (shard_len,) = cursor.unpack(_U8)
    shard = _utf8(cursor.take(shard_len), "shard name")
    wal = bytes(payload[cursor.offset :])
    return {"op": "replicate", "id": request_id, "shard": shard, "wal": wal}


# ----------------------------------------------------------------------
# Result frames
# ----------------------------------------------------------------------
def encode_result(request_id: object, payload: Dict[str, object]) -> bytes:
    """Pack a successful query response payload into a RESULT payload.

    ``payload`` is the dict the server builds for ``ok_response`` —
    ``results`` (tid/similarity dicts), ``stats`` (the
    ``encode_search_stats`` shape) and ``correlation_id``.  Raises
    :class:`ValueError` when the response has no binary form (traced
    responses, non-integer ids) — callers fall back to a JSON frame.
    """
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ValueError("binary result frames need an integer id")
    if set(payload) - {"results", "stats", "correlation_id"}:
        raise ValueError("payload has fields with no binary form")
    results = payload["results"]
    stats = payload["stats"]
    if "candidate_tier" in stats:
        # Sketch-tier stats (estimated_recall, sketch_candidates) have
        # no slot in the fixed stats block; lossy responses fall back
        # to a JSON frame so nothing is silently dropped.
        raise ValueError("sketch-tier stats ride JSON frames")
    cid = str(payload.get("correlation_id", "")).encode("utf-8")
    if len(cid) > 255:
        raise ValueError("correlation id too long for a binary result frame")
    optimal = stats.get("guaranteed_optimal")
    parts = [
        _I64.pack(request_id),
        _U8.pack(len(cid)),
        cid,
        _U32.pack(len(results)),
        struct.pack(f">{len(results)}q", *(entry["tid"] for entry in results)),
        struct.pack(
            f">{len(results)}d", *(entry["similarity"] for entry in results)
        ),
        _STATS.pack(
            int(stats["total_transactions"]),
            int(stats["transactions_accessed"]),
            int(stats["entries_scanned"]),
            int(stats["entries_pruned"]),
            int(stats["pages_read"]),
            int(stats["seeks"]),
            float(stats["latency_ms"]),
            1 if stats["terminated_early"] else 0,
            2 if optimal is None else (1 if optimal else 0),
        ),
    ]
    return b"".join(parts)


def decode_result(payload: bytes) -> Dict[str, object]:
    """Inverse of :func:`encode_result`; returns the NDJSON response shape."""
    cursor = _Cursor(payload)
    (request_id,) = cursor.unpack(_I64)
    (cid_len,) = cursor.unpack(_U8)
    cid = _utf8(cursor.take(cid_len), "correlation id")
    (count,) = cursor.unpack(_U32)
    if count * 16 > len(payload) - cursor.offset:
        raise FrameError(f"result count {count} exceeds the remaining payload")
    tids = struct.unpack(f">{count}q", cursor.take(8 * count))
    sims = struct.unpack(f">{count}d", cursor.take(8 * count))
    (
        total_transactions,
        transactions_accessed,
        entries_scanned,
        entries_pruned,
        pages_read,
        seeks,
        latency_ms,
        terminated_early,
        optimal_code,
    ) = cursor.unpack(_STATS)
    cursor.finish()
    if optimal_code not in (0, 1, 2):
        raise FrameError(f"bad guaranteed_optimal code {optimal_code}")
    response: Dict[str, object] = {
        "id": request_id,
        "ok": True,
        "results": [
            {"tid": tid, "similarity": sim} for tid, sim in zip(tids, sims)
        ],
        "stats": {
            "total_transactions": total_transactions,
            "transactions_accessed": transactions_accessed,
            "entries_scanned": entries_scanned,
            "entries_pruned": entries_pruned,
            "terminated_early": bool(terminated_early),
            "guaranteed_optimal": (
                None if optimal_code == 2 else bool(optimal_code)
            ),
            "pages_read": pages_read,
            "seeks": seeks,
            "latency_ms": latency_ms,
        },
    }
    if cid:
        response["correlation_id"] = cid
    return response


# ----------------------------------------------------------------------
# Error frames
# ----------------------------------------------------------------------
def encode_error(
    request_id: object, code: str, message: str
) -> bytes:
    """Pack a structured failure into an ERROR payload.

    Raises :class:`ValueError` for ids with no binary form (callers fall
    back to a JSON frame).
    """
    assert code in ERROR_CODES, code
    if request_id is None:
        id_part = _U8.pack(0) + _I64.pack(0)
    elif isinstance(request_id, int) and not isinstance(request_id, bool):
        id_part = _U8.pack(1) + _I64.pack(request_id)
    else:
        raise ValueError("binary error frames need an integer id or none")
    text = message.encode("utf-8")[:65535]
    return (
        id_part
        + _U8.pack(ERROR_CODES.index(code))
        + _U16.pack(len(text))
        + text
    )


def decode_error(payload: bytes) -> Dict[str, object]:
    """Inverse of :func:`encode_error`; returns the NDJSON error shape."""
    cursor = _Cursor(payload)
    (has_id,) = cursor.unpack(_U8)
    (request_id,) = cursor.unpack(_I64)
    (code_index,) = cursor.unpack(_U8)
    if code_index >= len(ERROR_CODES):
        raise FrameError(f"unknown error code index {code_index}")
    (msg_len,) = cursor.unpack(_U16)
    message = _utf8(cursor.take(msg_len), "error message")
    cursor.finish()
    return {
        "id": request_id if has_id else None,
        "ok": False,
        "error": {"code": ERROR_CODES[code_index], "message": message},
    }


# ----------------------------------------------------------------------
# Whole-message helpers (what the server and client actually call)
# ----------------------------------------------------------------------
def decode_payload(frame_type: int, payload: bytes) -> Dict[str, object]:
    """Decode any frame payload into its NDJSON-shaped dict."""
    if frame_type == FRAME_QUERY:
        return decode_query(payload)
    if frame_type == FRAME_RESULT:
        return decode_result(payload)
    if frame_type == FRAME_ERROR:
        return decode_error(payload)
    if frame_type == FRAME_REPLICATE:
        return decode_replicate(payload)
    if frame_type == FRAME_JSON:
        try:
            message = json.loads(_utf8(bytes(payload), "JSON frame"))
        except json.JSONDecodeError as exc:
            raise FrameError(f"invalid JSON frame: {exc}") from None
        if not isinstance(message, dict):
            raise FrameError(
                f"JSON frame must hold an object, got "
                f"{type(message).__name__}"
            )
        return message
    raise FrameError(f"unknown frame type {frame_type}")


def encode_request_frame(message: Dict[str, object]) -> bytes:
    """Encode a request dict as one frame (client side).

    Queries get the dense QUERY form when representable; everything else
    (control ops, mutations, exotic field values) rides in a JSON frame.
    """
    if message.get("op") in _OP_CODES:
        try:
            return encode_frame(FRAME_QUERY, encode_query(message))
        except (ValueError, TypeError, KeyError, struct.error):
            pass
    if message.get("op") == "replicate":
        wal = message.get("wal")
        if wal is None and isinstance(message.get("wal_b64"), str):
            try:
                wal = base64.b64decode(message["wal_b64"])
            except (binascii.Error, ValueError):
                wal = None
        if isinstance(wal, (bytes, bytearray, memoryview)):
            try:
                return encode_frame(
                    FRAME_REPLICATE,
                    encode_replicate(
                        message.get("id"),
                        str(message.get("shard", "")),
                        bytes(wal),
                    ),
                )
            except (ValueError, TypeError, struct.error):
                pass
    return encode_frame(FRAME_JSON, json.dumps(message).encode("utf-8"))


def encode_ok_frame(
    request_id: object, payload: Optional[Dict[str, object]] = None
) -> bytes:
    """Encode a success response as one frame (server side).

    Plain query answers get the dense RESULT form; responses with extra
    fields (traces, control payloads) ride in a JSON frame.
    """
    if payload is not None and "results" in payload and "stats" in payload:
        try:
            return encode_frame(FRAME_RESULT, encode_result(request_id, payload))
        except (ValueError, TypeError, KeyError, struct.error):
            pass
    message: Dict[str, object] = {"id": request_id, "ok": True}
    if payload:
        message.update(payload)
    return encode_frame(FRAME_JSON, json.dumps(message).encode("utf-8"))


def encode_error_frame(request_id: object, code: str, message: str) -> bytes:
    """Encode a structured failure as one frame (server side)."""
    try:
        return encode_frame(FRAME_ERROR, encode_error(request_id, code, message))
    except (ValueError, TypeError, struct.error):
        body = {
            "id": request_id,
            "ok": False,
            "error": {"code": code, "message": message},
        }
        return encode_frame(FRAME_JSON, json.dumps(body).encode("utf-8"))
