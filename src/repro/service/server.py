"""Asyncio TCP server keeping one query engine resident for many clients.

:class:`QueryServer` accepts newline-delimited-JSON connections (see
:mod:`repro.service.protocol`), funnels every ``knn``/``range`` request
through the shared :class:`~repro.service.batcher.MicroBatcher`, and
answers control operations inline:

* ``stats`` — the live :class:`~repro.service.metrics.ServiceMetrics`
  snapshot plus a description of the resident index;
* ``ping`` — liveness;
* ``shutdown`` — graceful drain (can be disabled with
  ``allow_remote_shutdown=False`` when the socket is not trusted).

Each connection's requests are served *concurrently*: the reader keeps
pulling lines while earlier queries sit in the micro-batcher, so a
single pipelining client already benefits from batching.  Responses
carry the request ``id`` and may be written out of order.

Graceful shutdown (:meth:`QueryServer.shutdown`) stops admitting new
queries, drains every in-flight batch, flushes pending response writes,
then closes the listening socket and all connections — no accepted
request is ever silently dropped.

:func:`serve_in_background` runs a server on a private event loop in a
daemon thread — the harness, tests and benchmarks use it to stand up a
real TCP server in-process.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import threading
import time
import uuid
from typing import Dict, Optional, Tuple

from repro.obs.distributed import TraceContext, new_trace_id
from repro.obs.log import JsonLogger, with_correlation_id
from repro.obs.profiler import SamplingProfiler, render_folded
from repro.obs.slo import SloMonitor
from repro.obs.trace import Tracer
from repro.service import frames
from repro.service.batcher import MicroBatcher
from repro.service.metrics import ServiceMetrics
from repro.service.resilience import CircuitBreaker, CircuitOpenError
from repro.service.protocol import (
    CLUSTER_OPS,
    METRICS_FORMATS,
    METRICS_SCOPES,
    MUTATION_OPS,
    PROFILE_FORMATS,
    WIRE_PROTOCOLS,
    ProtocolError,
    encode_search_stats,
    encode_neighbors,
    error_response,
    ok_response,
    parse_mutation,
    parse_query,
    parse_request,
    validate_request,
)

#: One-shot ``profile`` requests may sample at most this long.
MAX_PROFILE_SECONDS = 30.0


class _Connection:
    """Per-connection wire state: negotiated protocol + response encoding.

    A connection starts in NDJSON mode; its first request may be a
    ``hello`` switching it to binary frames.  The encode methods pick
    the matching response representation, so the rest of the server
    never branches on the wire.
    """

    __slots__ = ("wire", "negotiated", "requests_seen")

    def __init__(self) -> None:
        self.wire = "ndjson"
        self.negotiated = False
        self.requests_seen = False

    def encode_ok(self, request_id, payload=None) -> bytes:
        if self.wire == "binary":
            return frames.encode_ok_frame(request_id, payload)
        return ok_response(request_id, payload)

    def encode_error(self, request_id, code: str, message: str) -> bytes:
        if self.wire == "binary":
            return frames.encode_error_frame(request_id, code, message)
        return error_response(request_id, code, message)


class QueryServer:
    """One resident engine, many concurrent TCP clients.

    Connections speak NDJSON (:mod:`repro.service.protocol`) by default
    and may negotiate the length-prefixed binary frame protocol
    (:mod:`repro.service.frames`) with a ``hello`` first request.

    Parameters
    ----------
    engine:
        :class:`~repro.core.engine.QueryEngine` or
        :class:`~repro.core.engine.ShardedQueryEngine` (anything with
        ``run_batch``).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    max_batch_size, max_wait_ms, max_queue, default_timeout_ms:
        Micro-batcher knobs, see
        :class:`~repro.service.batcher.MicroBatcher`.
    allow_remote_shutdown:
        Whether the ``shutdown`` op is honoured (default True; the CI
        smoke test and the closed-loop harness rely on it).
    index_info:
        Optional static description of the resident index, echoed in
        the ``stats`` payload (e.g. dataset spec, K, num transactions).
    live_index:
        Optional :class:`~repro.live.index.LiveIndex` behind the engine.
        When given, the ``insert``/``delete``/``compact``/``checkpoint``
        mutation ops are served (on the default executor, since WAL
        appends block); without it they are rejected with
        ``bad_request`` — the index is read-only.  During a graceful
        drain mutations are rejected with ``shutting_down`` exactly
        like queries.
    metrics_registry:
        Optional shared :class:`~repro.obs.registry.MetricRegistry` for
        :class:`~repro.service.metrics.ServiceMetrics` — pass the same
        registry the live index exports its WAL/compaction gauges to so
        one ``metrics`` scrape shows both.
    logger:
        Optional structured :class:`~repro.obs.log.JsonLogger` (disabled
        by default).  The batcher logs through a child of it, and every
        query log line carries the request's server-assigned correlation
        id.
    wire:
        Wire-protocol policy: ``"auto"`` (default) lets connections
        negotiate the binary frame protocol with ``hello``; ``"ndjson"``
        refuses binary hellos with ``bad_request``, which auto-mode
        clients treat as "fall back to NDJSON" (see :doc:`docs/wire`).
        Every connection still starts in NDJSON mode either way.
    slo_objectives:
        Optional :class:`~repro.obs.slo.SloObjective` sequence; defaults
        to :data:`~repro.obs.slo.DEFAULT_OBJECTIVES`.  An
        :class:`~repro.obs.slo.SloMonitor` over the server's registry is
        ticked every ``slo_interval_s`` seconds by a background task
        (burn-rate gauges, error-budget gauge, structured alerts).
        ``slo_interval_s=0`` disables the periodic tick (the monitor
        still exists and can be ticked by hand).
    profile_hz:
        When set, a continuous :class:`~repro.obs.profiler.SamplingProfiler`
        runs at this rate for the server's lifetime and the ``profile``
        control op returns its accumulated stacks.  When ``None`` (the
        default) the op serves one-shot profiles on demand and the
        steady-state cost is zero.
    """

    #: Frame types a client may legally send; cluster subclasses widen
    #: this (shard owners additionally accept ``FRAME_REPLICATE``).
    REQUEST_FRAME_TYPES: Tuple[int, ...] = (
        frames.FRAME_JSON,
        frames.FRAME_QUERY,
    )

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        default_timeout_ms: float = 30_000.0,
        allow_remote_shutdown: bool = True,
        index_info: Optional[Dict[str, object]] = None,
        logger: Optional[JsonLogger] = None,
        live_index=None,
        metrics_registry=None,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 30.0,
        wire: str = "auto",
        slo_objectives=None,
        slo_interval_s: float = 5.0,
        profile_hz: Optional[float] = None,
    ) -> None:
        if wire not in ("auto", "ndjson"):
            raise ValueError(
                f"wire policy must be 'auto' or 'ndjson', got {wire!r}"
            )
        self._wire_policy = wire
        self._engine = engine
        self._host = host
        self._port = port
        self._log = logger if logger is not None else JsonLogger("server")
        self.live_index = live_index
        self.metrics = ServiceMetrics(registry=metrics_registry)
        #: True after a durable-write failure: mutations are rejected
        #: ``unavailable`` (reads keep serving from the consistent
        #: in-memory state) until a WAL probe succeeds again.
        self.degraded = False
        self._degraded_gauge = self.metrics.registry.gauge(
            "repro_service_degraded",
            "1 while the durable write path is degraded, else 0",
        )
        self._degraded_gauge.set_function(lambda: float(self.degraded))
        #: Repeated compaction/checkpoint failures trip this breaker:
        #: further maintenance ops fail fast with ``unavailable`` until
        #: the reset timeout lets one probe through.
        self.compaction_breaker = CircuitBreaker(
            name="compaction",
            failure_threshold=breaker_threshold,
            reset_timeout=breaker_reset_seconds,
        )
        self._batcher_options = dict(
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            default_timeout_ms=default_timeout_ms,
        )
        self.allow_remote_shutdown = bool(allow_remote_shutdown)
        self.index_info = dict(index_info or {})
        self._slo_objectives = slo_objectives
        self._slo_interval_s = float(slo_interval_s)
        self.slo: Optional[SloMonitor] = None
        self._slo_task: Optional["asyncio.Task"] = None
        self.profiler: Optional[SamplingProfiler] = (
            SamplingProfiler(hz=profile_hz) if profile_hz is not None else None
        )
        self.batcher: Optional[MicroBatcher] = None
        self._server: Optional["asyncio.base_events.Server"] = None
        self._request_tasks: set = set()
        self._writers: set = set()
        self._shutdown_started = False
        self._shutdown_done: Optional["asyncio.Event"] = None
        self._shutdown_task: Optional["asyncio.Task"] = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._server is None:
            raise RuntimeError("server not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self.batcher = MicroBatcher(
            self._engine,
            metrics=self.metrics,
            logger=self._log.child("batcher"),
            **self._batcher_options,
        )
        # Engines that can account kernel fallbacks get the registry
        # (duck-typed so sharded/live/router engines need not care).
        bind = getattr(self._engine, "bind_metrics", None)
        if bind is not None:
            bind(self.metrics.registry)
        slo_kwargs = {"logger": self._log.child("slo")}
        if self._slo_objectives is not None:
            slo_kwargs["objectives"] = self._slo_objectives
        self.slo = SloMonitor(self.metrics.registry, **slo_kwargs)
        if self._slo_interval_s > 0:
            self._slo_task = asyncio.get_running_loop().create_task(
                self._slo_loop()
            )
        if self.profiler is not None:
            self.profiler.start()
        self._shutdown_done = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._port
        )
        return self.address

    async def _slo_loop(self) -> None:
        """Tick the SLO monitor until shutdown (cost: a few counter reads)."""
        while True:
            await asyncio.sleep(self._slo_interval_s)
            try:
                self.slo.tick()
            except Exception as exc:  # never let monitoring kill serving
                self._log.error("slo.tick_failed", error=str(exc))

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until :meth:`shutdown` completes."""
        if self._server is None:
            await self.start()
        await self._shutdown_done.wait()

    async def wait_shutdown(self) -> None:
        """Block until a graceful shutdown has completed."""
        assert self._shutdown_done is not None, "server not started"
        await self._shutdown_done.wait()

    # ------------------------------------------------------------------
    async def shutdown(self) -> None:
        """Graceful drain: reject new queries, finish admitted ones, close.

        Idempotent; concurrent callers all return once the drain is done.
        """
        assert self._shutdown_done is not None, "server not started"
        if self._shutdown_started:
            await self._shutdown_done.wait()
            return
        self._shutdown_started = True
        # 0. Stop background observability first: the SLO task and the
        #    continuous profiler must not observe the drain as an outage.
        if self._slo_task is not None:
            self._slo_task.cancel()
            try:
                await self._slo_task
            except asyncio.CancelledError:
                pass
            self._slo_task = None
        if self.profiler is not None:
            self.profiler.stop()
        # 1. Stop accepting connections; in-flight sockets stay open.
        self._server.close()
        # 2. Drain the batcher: new submissions now get `shutting_down`,
        #    admitted queries run to completion.
        await self.batcher.drain()
        # 3. Let every pending response hit its socket.
        while self._request_tasks:
            await asyncio.gather(*list(self._request_tasks), return_exceptions=True)
            await asyncio.sleep(0)  # let done-callbacks prune the task set
        # 4. Tear the connections down.
        for writer in list(self._writers):
            writer.close()
        await self._server.wait_closed()
        self._shutdown_done.set()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        conn = _Connection()
        try:
            while True:
                if conn.wire == "binary":
                    if not await self._pump_binary(
                        reader, writer, write_lock, conn
                    ):
                        break
                    continue
                try:
                    line = await reader.readline()
                except (
                    ConnectionResetError,
                    asyncio.IncompleteReadError,
                    ValueError,  # line longer than the stream limit
                ):
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                await self._handle_line(text, writer, write_lock, conn)
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _pump_binary(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        conn: _Connection,
    ) -> bool:
        """Read and dispatch one binary frame; False ends the connection.

        A malformed *header* is unrecoverable (the stream cannot be
        resynchronised): the server answers ``bad_request`` once and
        drops the connection.  A malformed *payload* inside a valid
        frame only fails that request — framing stays aligned.  The
        payload length is validated against the frame cap before any
        read, so a corrupt length prefix never triggers a huge
        allocation.
        """
        try:
            header = await reader.readexactly(frames.HEADER.size)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return False
        try:
            frame_type, length = frames.decode_header(header)
            if frame_type not in self.REQUEST_FRAME_TYPES:
                raise frames.FrameError(
                    f"frame type {frame_type} is not a request frame"
                )
        except frames.FrameError as exc:
            self.metrics.record_rejection("bad_request")
            await self._send(
                writer,
                write_lock,
                conn.encode_error(None, "bad_request", str(exc)),
            )
            return False
        try:
            payload = await reader.readexactly(length) if length else b""
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return False
        try:
            message = frames.decode_payload(frame_type, payload)
            message = validate_request(message)
        except (frames.FrameError, ProtocolError) as exc:
            code = exc.code if isinstance(exc, ProtocolError) else "bad_request"
            self.metrics.record_rejection(code)
            await self._send(
                writer,
                write_lock,
                conn.encode_error(None, code, str(exc)),
            )
            return True
        await self._dispatch(message, writer, write_lock, conn)
        return True

    async def _handle_line(
        self,
        text: str,
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        conn: _Connection,
    ) -> None:
        try:
            message = parse_request(text)
        except ProtocolError as exc:
            self.metrics.record_rejection(exc.code)
            await self._send(
                writer,
                write_lock,
                conn.encode_error(None, exc.code, exc.message),
            )
            return
        await self._dispatch(message, writer, write_lock, conn)

    async def _dispatch(
        self,
        message,
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        conn: _Connection,
    ) -> None:
        op = message["op"]
        request_id = message.get("id")
        if op == "hello":
            await self._handle_hello(message, writer, write_lock, conn)
            return
        conn.requests_seen = True
        if op == "ping":
            await self._send(
                writer, write_lock, conn.encode_ok(request_id, {"pong": True})
            )
            return
        if op == "stats":
            payload = {"stats": self.metrics.snapshot(), "index": self.index_info}
            if self.slo is not None:
                payload["slo"] = self.slo.report()
            await self._send(
                writer, write_lock, conn.encode_ok(request_id, payload)
            )
            return
        if op == "health":
            payload = {
                "ready": not self._shutdown_started,
                "degraded": bool(self.degraded),
                "draining": bool(self._shutdown_started),
                "mutable": self.live_index is not None,
                "breaker": self.compaction_breaker.state,
            }
            await self._send(
                writer, write_lock, conn.encode_ok(request_id, payload)
            )
            return
        if op == "metrics":
            await self._serve_metrics(message, writer, write_lock, conn)
            return
        if op == "profile":
            task = asyncio.get_running_loop().create_task(
                self._serve_profile(message, writer, write_lock, conn)
            )
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)
            return
        if op == "shutdown":
            if not self.allow_remote_shutdown:
                self.metrics.record_rejection("bad_request")
                await self._send(
                    writer,
                    write_lock,
                    conn.encode_error(
                        request_id, "bad_request", "remote shutdown is disabled"
                    ),
                )
                return
            await self._send(
                writer, write_lock, conn.encode_ok(request_id, {"draining": True})
            )
            # Keep a strong reference: the loop only weak-refs its tasks.
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown()
            )
            return
        if op in CLUSTER_OPS:
            handled = await self._dispatch_cluster(
                message, writer, write_lock, conn
            )
            if not handled:
                self.metrics.record_rejection("bad_request")
                await self._send(
                    writer,
                    write_lock,
                    conn.encode_error(
                        request_id,
                        "bad_request",
                        f"op {op!r} requires a cluster node or router "
                        "(see repro.cluster)",
                    ),
                )
            return
        if op in MUTATION_OPS:
            try:
                if self._shutdown_started:
                    raise ProtocolError(
                        "shutting_down", "server is draining; mutation rejected"
                    )
                if self.live_index is None:
                    raise ProtocolError(
                        "bad_request",
                        f"op {op!r} requires a live index; this server is "
                        "read-only",
                    )
                mutation = parse_mutation(message)
            except ProtocolError as exc:
                self.metrics.record_rejection(exc.code)
                await self._send(
                    writer,
                    write_lock,
                    conn.encode_error(request_id, exc.code, exc.message),
                )
                return
            task = asyncio.get_running_loop().create_task(
                self._serve_mutation(mutation, writer, write_lock, conn)
            )
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)
            return
        # Query op: validated + batched, served by its own task so the
        # reader keeps pulling concurrent requests off this connection.
        self.metrics.record_received()
        try:
            request = parse_query(message)
        except ProtocolError as exc:
            self.metrics.record_rejection(exc.code)
            await self._send(
                writer,
                write_lock,
                conn.encode_error(request_id, exc.code, exc.message),
            )
            return
        task = asyncio.get_running_loop().create_task(
            self._serve_query(request, writer, write_lock, conn)
        )
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)

    async def _dispatch_cluster(
        self,
        message,
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        conn: _Connection,
    ) -> bool:
        """Hook for :data:`CLUSTER_OPS`; True when the op was served.

        The base server implements none of them — subclasses in
        :mod:`repro.cluster` override this (nodes serve ``replicate`` /
        ``promote`` / ``role`` / ``rows``, the router serves ``ring`` /
        ``rebalance``).
        """
        return False

    async def _serve_metrics(
        self,
        message,
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        conn: _Connection,
    ) -> None:
        """Serve the ``metrics`` op in the requested format and scope.

        ``scope="self"`` (default) exposes this process's registry;
        ``scope="cluster"`` asks for the merged cluster-wide view, which
        only the router can answer (:meth:`_metrics_registry` is the
        override point).
        """
        request_id = message.get("id")
        fmt = message.get("format", "json")
        scope = message.get("scope", "self")
        try:
            if fmt not in METRICS_FORMATS:
                known = ", ".join(METRICS_FORMATS)
                raise ProtocolError(
                    "bad_request",
                    f"unknown metrics format {fmt!r}; known: {known}",
                )
            if scope not in METRICS_SCOPES:
                known = ", ".join(METRICS_SCOPES)
                raise ProtocolError(
                    "bad_request",
                    f"unknown metrics scope {scope!r}; known: {known}",
                )
            registry = await self._metrics_registry(scope)
        except ProtocolError as exc:
            self.metrics.record_rejection(exc.code)
            await self._send(
                writer,
                write_lock,
                conn.encode_error(request_id, exc.code, exc.message),
            )
            return
        if fmt == "prometheus":
            payload = {
                "format": "prometheus",
                "scope": scope,
                "metrics": registry.to_prometheus_text(),
            }
        else:
            payload = {
                "format": "json",
                "scope": scope,
                "metrics": registry.to_json(),
            }
        await self._send(
            writer, write_lock, conn.encode_ok(request_id, payload)
        )

    async def _metrics_registry(self, scope: str):
        """The registry backing a ``metrics`` request at ``scope``.

        The base server only knows about itself;
        :class:`~repro.cluster.router.RouterServer` overrides this to
        scatter-gather every node's registry and merge them.
        """
        if scope == "cluster":
            raise ProtocolError(
                "bad_request",
                "metrics scope 'cluster' requires a cluster router",
            )
        return self.metrics.registry

    async def _serve_profile(
        self,
        message,
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        conn: _Connection,
    ) -> None:
        """Serve the ``profile`` op: folded stacks from the sampler.

        With a continuous profiler (``profile_hz``) the accumulated
        snapshot is returned immediately (``reset: true`` clears it).
        Otherwise a one-shot :class:`SamplingProfiler` runs for
        ``duration_s`` seconds (capped at :data:`MAX_PROFILE_SECONDS`)
        and returns what it saw — concurrent requests keep being served
        while it samples.
        """
        request_id = message.get("id")
        fmt = message.get("format", "folded")
        try:
            if fmt not in PROFILE_FORMATS:
                known = ", ".join(PROFILE_FORMATS)
                raise ProtocolError(
                    "bad_request",
                    f"unknown profile format {fmt!r}; known: {known}",
                )
            if self.profiler is not None:
                snapshot = self.profiler.snapshot(
                    reset=bool(message.get("reset", False))
                )
                mode = "continuous"
            else:
                try:
                    duration_s = float(message.get("duration_s", 1.0))
                except (TypeError, ValueError):
                    raise ProtocolError(
                        "bad_request", "duration_s must be a number"
                    )
                if not 0 < duration_s <= MAX_PROFILE_SECONDS:
                    raise ProtocolError(
                        "bad_request",
                        "duration_s must be in (0, "
                        f"{MAX_PROFILE_SECONDS:g}], got {duration_s:g}",
                    )
                try:
                    hz = float(message.get("hz", 0) or 0) or None
                    profiler = (
                        SamplingProfiler(hz=hz)
                        if hz is not None
                        else SamplingProfiler()
                    )
                except ValueError as exc:
                    raise ProtocolError("bad_request", str(exc))
                profiler.start()
                try:
                    await asyncio.sleep(duration_s)
                finally:
                    profiler.stop()
                snapshot = profiler.snapshot()
                mode = "one_shot"
        except ProtocolError as exc:
            self.metrics.record_rejection(exc.code)
            await self._send(
                writer,
                write_lock,
                conn.encode_error(request_id, exc.code, exc.message),
            )
            return
        payload: Dict[str, object] = {"format": fmt, "mode": mode}
        if fmt == "folded":
            payload["profile"] = render_folded(snapshot)
            payload["samples"] = snapshot["samples"]
            payload["elapsed_s"] = snapshot["elapsed_s"]
        else:
            payload["profile"] = snapshot
        await self._send(
            writer, write_lock, conn.encode_ok(request_id, payload)
        )

    async def _handle_hello(
        self,
        message,
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        conn: _Connection,
    ) -> None:
        """Negotiate the connection's wire protocol.

        ``hello`` must be the very first request on a connection: once
        any other request (or a previous hello) has been seen, switching
        the response encoding mid-stream would corrupt concurrently
        in-flight responses, so a late hello is a ``bad_request``.  The
        acknowledgement always goes out in the *current* encoding; the
        switch takes effect for the next request.
        """
        request_id = message.get("id")
        wire = message.get("wire", "ndjson")
        if wire not in WIRE_PROTOCOLS:
            known = ", ".join(WIRE_PROTOCOLS)
            error = f"unknown wire protocol {wire!r}; known: {known}"
        elif wire == "binary" and self._wire_policy == "ndjson":
            error = "binary wire is disabled on this server"
        elif conn.negotiated or conn.requests_seen:
            error = "hello must be the first request on a connection"
        else:
            await self._send(
                writer, write_lock, conn.encode_ok(request_id, {"wire": wire})
            )
            conn.wire = wire
            conn.negotiated = True
            return
        self.metrics.record_rejection("bad_request")
        await self._send(
            writer,
            write_lock,
            conn.encode_error(request_id, "bad_request", error),
        )

    async def _serve_mutation(
        self,
        mutation,
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        conn: _Connection,
    ) -> None:
        """Apply one mutation off the event loop and answer it.

        WAL appends fsync, and compaction rebuilds a table — both block,
        so mutations run on the default executor.  The live index's own
        mutation lock serialises them; reads stay on the loop and are
        never blocked (they only take the brief swap lock).
        """
        cid = uuid.uuid4().hex[:16]
        loop = asyncio.get_running_loop()
        live = self.live_index
        maintenance = mutation.op in ("compact", "checkpoint")
        with with_correlation_id(cid):
            self._log.info("mutation.received", op=mutation.op)
            try:
                if self.degraded:
                    # One durability probe re-admits mutations after a
                    # write failure; until it succeeds every mutation
                    # fails fast with the same retryable code.
                    if await loop.run_in_executor(None, live.probe):
                        self.degraded = False
                        self._log.info("mutation.degraded_recovered")
                    else:
                        raise ProtocolError(
                            "unavailable",
                            "durable write path is degraded; serving "
                            "reads only",
                        )
                if maintenance:
                    self.compaction_breaker.check()
                if mutation.op == "insert":
                    tid = await loop.run_in_executor(
                        None,
                        functools.partial(
                            live.insert,
                            mutation.items,
                            client_id=mutation.client_id,
                            request_id=mutation.request_id,
                        ),
                    )
                    payload = {"tid": int(tid)}
                elif mutation.op == "delete":
                    await loop.run_in_executor(
                        None,
                        functools.partial(
                            live.delete,
                            mutation.tid,
                            client_id=mutation.client_id,
                            request_id=mutation.request_id,
                        ),
                    )
                    payload = {"deleted": int(mutation.tid)}
                elif mutation.op == "compact":
                    report = await loop.run_in_executor(
                        None, live.compact, mutation.repartition
                    )
                    payload = {"compaction": dataclasses.asdict(report)}
                else:  # checkpoint
                    applied = await loop.run_in_executor(None, live.checkpoint)
                    payload = {"applied_seqno": int(applied)}
                if maintenance:
                    self.compaction_breaker.record_success()
            except ProtocolError as exc:
                self.metrics.record_rejection(exc.code)
                self._log.warning(
                    "mutation.rejected", code=exc.code, error=exc.message
                )
                response = conn.encode_error(mutation.id, exc.code, exc.message)
            except CircuitOpenError as exc:
                self.metrics.record_rejection("unavailable")
                self._log.warning("mutation.breaker_open", error=str(exc))
                response = conn.encode_error(mutation.id, "unavailable", str(exc))
            except OSError as exc:
                # The WAL/checkpoint write failed after (at most) a
                # clean rewind: this op was not applied, and the server
                # degrades to read-only until a probe write succeeds.
                self.degraded = True
                if maintenance:
                    self.compaction_breaker.record_failure()
                self.metrics.record_rejection("unavailable")
                self._log.error("mutation.unavailable", error=str(exc))
                response = conn.encode_error(mutation.id, "unavailable", str(exc))
            except ValueError as exc:
                self.metrics.record_rejection("bad_request")
                self._log.warning("mutation.rejected", error=str(exc))
                response = conn.encode_error(mutation.id, "bad_request", str(exc))
            except Exception as exc:  # defensive: never kill the connection
                if maintenance:
                    self.compaction_breaker.record_failure()
                self.metrics.record_rejection("internal")
                self._log.error("mutation.failed", error=str(exc))
                response = conn.encode_error(mutation.id, "internal", str(exc))
            else:
                self._log.info("mutation.completed", op=mutation.op)
                payload["correlation_id"] = cid
                response = conn.encode_ok(mutation.id, payload)
        await self._send(writer, write_lock, response)

    async def _serve_query(
        self,
        request,
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        conn: _Connection,
    ) -> None:
        # The server owns correlation ids: every admitted query gets one,
        # stamped on log lines, the span tree and (if traced) the
        # response.  A client-supplied id (the cluster router stamping
        # its own cid on fan-out sub-queries so traces correlate across
        # nodes) is honoured instead of minting a fresh one.
        cid = request.correlation_id or uuid.uuid4().hex[:16]
        request = dataclasses.replace(request, correlation_id=cid)
        # An incoming trace context (the router's scatter legs carry one)
        # makes this request part of a distributed trace: a sampled
        # context forces tracing even without `trace: true`, and the
        # propagated trace id replaces a locally minted one so router and
        # shard spans share it.
        ctx = (
            TraceContext.decode(request.trace_context)
            if request.trace_context is not None
            else None
        )
        wants_trace = request.trace or (ctx is not None and ctx.sampled)
        if wants_trace:
            trace_id = ctx.trace_id if ctx is not None else new_trace_id()
            tracer = Tracer(correlation_id=cid, trace_id=trace_id)
        else:
            tracer = None
        started = time.monotonic()
        with with_correlation_id(cid):
            self._log.info(
                "request.received",
                op=request.key.op,
                num_items=len(request.items),
                traced=wants_trace,
            )
            try:
                if request.key.candidate_tier != "exact" and not getattr(
                    self._engine, "supports_lsh_tier", False
                ):
                    raise ProtocolError(
                        "bad_request",
                        "candidate_tier='lsh' needs a sketch-enabled index "
                        "(build one with `repro sketch build`)",
                    )
                if tracer is not None:
                    span_attrs = {"op": request.key.op}
                    if ctx is not None:
                        span_attrs["parent_span_id"] = ctx.parent_span_id
                    with tracer.activate(), tracer.span(
                        "service.request", **span_attrs
                    ):
                        results, stats = await self.batcher.submit(
                            request, tracer=tracer
                        )
                else:
                    results, stats = await self.batcher.submit(request)
            except ProtocolError as exc:
                self.metrics.record_rejection(exc.code)
                self._log.warning(
                    "request.rejected", code=exc.code, message=exc.message
                )
                response = conn.encode_error(request.id, exc.code, exc.message)
            except Exception as exc:  # defensive: never kill the connection task
                self.metrics.record_rejection("internal")
                self._log.error("request.failed", error=str(exc))
                response = conn.encode_error(request.id, "internal", str(exc))
            else:
                latency = time.monotonic() - started
                self.metrics.record_completion(latency, wire=conn.wire)
                self._log.info(
                    "request.completed",
                    latency_ms=1000.0 * latency,
                    results=len(results),
                )
                payload = {
                    "results": encode_neighbors(results),
                    "stats": encode_search_stats(stats),
                    "correlation_id": cid,
                }
                if tracer is not None:
                    payload["trace"] = tracer.to_dicts()
                response = conn.encode_ok(request.id, payload)
        await self._send(writer, write_lock, response)

    @staticmethod
    async def _send(
        writer: "asyncio.StreamWriter", write_lock: "asyncio.Lock", data: bytes
    ) -> None:
        if writer.is_closing():
            return
        try:
            async with write_lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to deliver the response to


# ----------------------------------------------------------------------
# Background-thread harness
# ----------------------------------------------------------------------
class BackgroundServer:
    """A :class:`QueryServer` running on its own event loop in a thread.

    Construct through :func:`serve_in_background`.  ``address`` is the
    live ``(host, port)``; :meth:`stop` triggers a graceful shutdown and
    joins the thread (idempotent, and a no-op if a client already shut
    the server down remotely).
    """

    def __init__(self, server_cls=None) -> None:
        self.address: Optional[Tuple[str, int]] = None
        self.server: Optional[QueryServer] = None
        self._server_cls = server_cls if server_cls is not None else QueryServer
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    async def _amain(self, engine, options: Dict[str, object]) -> None:
        try:
            self.server = self._server_cls(engine, **options)
            self.address = await self.server.start()
            self._loop = asyncio.get_running_loop()
        except BaseException as exc:
            self._startup_error = exc
            raise
        finally:
            self._ready.set()
        await self.server.wait_shutdown()

    def _run(self, engine, options: Dict[str, object]) -> None:
        asyncio.run(self._amain(engine, options))

    @property
    def running(self) -> bool:
        """True while the server thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully shut the server down and join its thread."""
        if self._loop is not None and not self._loop.is_closed():
            def _trigger() -> None:
                # Assign to keep a strong task reference until completion.
                self._shutdown_task = asyncio.get_running_loop().create_task(
                    self.server.shutdown()
                )

            try:
                self._loop.call_soon_threadsafe(_trigger)
            except RuntimeError:
                pass  # loop already closed: remote shutdown beat us to it
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_background(engine, server_cls=None, **options) -> BackgroundServer:
    """Start a :class:`QueryServer` in a daemon thread; returns its handle.

    Blocks until the listening socket is bound, so ``handle.address`` is
    immediately usable.  Keyword options are passed through to
    ``server_cls`` (default :class:`QueryServer`; the cluster harness
    passes its node/router subclasses).
    """
    handle = BackgroundServer(server_cls=server_cls)
    thread = threading.Thread(
        target=handle._run,
        args=(engine, options),
        name="repro-query-server",
        daemon=True,
    )
    handle._thread = thread
    thread.start()
    handle._ready.wait()
    if handle._startup_error is not None:
        thread.join()
        raise RuntimeError(
            f"server failed to start: {handle._startup_error}"
        ) from handle._startup_error
    return handle
