"""Dynamic micro-batching of concurrent in-flight queries.

The server's throughput lever: concurrent requests whose parameters are
*compatible* — equal :class:`~repro.core.engine.BatchKey`, i.e. same
operation, similarity function, ``k``/``threshold``, termination and
sort settings — are coalesced into one
:meth:`~repro.core.engine.QueryEngine.run_batch` call, so online
traffic inherits the batched engine's amortised bound pass, batched
posting walks and shared entry reads, while results are de-multiplexed
back to each caller unchanged (the engine guarantees per-query results
identical to single-query execution, so coalescing is invisible to
clients).

A batch closes when it reaches ``max_batch_size`` *or* when its oldest
request has waited ``max_wait_ms`` — the classic dynamic-batching
trade-off: larger windows raise throughput under load, the wait bound
caps the latency cost for a lone request (an idle server executes a
single query after at most ``max_wait_ms``).

Admission control is a hard bound on in-flight requests
(queued + executing).  Beyond ``max_queue`` the batcher *rejects* with
``overloaded`` instead of buffering — bounded memory and an explicit
backpressure signal clients can retry on, rather than collapse under a
traffic spike.  Each request also carries a deadline: requests that
expire while queued are never executed, and an expired waiter is
unblocked with a ``timeout`` error even if its batch is still running.

Batches execute on a dedicated single worker thread
(:class:`~concurrent.futures.ThreadPoolExecutor`), keeping the event
loop free to accept connections and serve ``stats`` while the engine
crunches; one executing batch at a time also keeps the engine's shared
buffer pool single-threaded.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.core.engine import BatchKey, summarise_stats
from repro.core.search import Neighbor, SearchStats
from repro.core.similarity import SimilarityFunction
from repro.obs.log import JsonLogger, with_correlation_id
from repro.obs.trace import Tracer
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import ProtocolError, QueryRequest
from repro.utils.validation import check_positive


@dataclass
class _Pending:
    """One admitted query waiting for (or riding in) a batch."""

    request: QueryRequest
    future: "asyncio.Future"
    deadline: float
    # Observability: the request's tracer (None when untraced) and the
    # perf_counter timestamp of admission, for the queue-wait span.
    tracer: Optional[Tracer] = None
    enqueued_s: float = 0.0


@dataclass
class _Bucket:
    """Open batch for one key: requests accumulate until a flush."""

    similarity: SimilarityFunction
    items: List[_Pending] = field(default_factory=list)
    timer: Optional["asyncio.TimerHandle"] = None


class MicroBatcher:
    """Coalesce concurrent requests into engine batches (see module doc).

    Parameters
    ----------
    engine:
        Any engine exposing ``run_batch(key, similarity, targets)`` —
        :class:`~repro.core.engine.QueryEngine` or
        :class:`~repro.core.engine.ShardedQueryEngine`.
    max_batch_size:
        Flush a batch as soon as it holds this many requests.
    max_wait_ms:
        Flush a batch once its oldest request has waited this long.
    max_queue:
        Admission bound on in-flight requests (queued + executing);
        beyond it :meth:`submit` raises ``overloaded``.
    default_timeout_ms:
        Deadline applied when a request does not carry ``timeout_ms``.
    metrics:
        Shared :class:`~repro.service.metrics.ServiceMetrics`; the
        batcher records executed batches and exposes the queue-depth
        gauge through it.
    logger:
        Optional structured :class:`~repro.obs.log.JsonLogger`; disabled
        by default.  Flush events carry the correlation ids of every
        traced request in the batch.
    """

    def __init__(
        self,
        engine,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        default_timeout_ms: float = 30_000.0,
        metrics: Optional[ServiceMetrics] = None,
        logger: Optional[JsonLogger] = None,
    ) -> None:
        check_positive(max_batch_size, "max_batch_size")
        check_positive(max_queue, "max_queue")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        check_positive(default_timeout_ms, "default_timeout_ms")
        self._engine = engine
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue = int(max_queue)
        self.default_timeout_ms = float(default_timeout_ms)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._log = logger if logger is not None else JsonLogger("batcher")
        self._buckets: Dict[BatchKey, _Bucket] = {}
        self._active: set = set()
        self._in_flight = 0
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-batch"
        )
        self.metrics.bind_queue_depth(lambda: self._in_flight)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Requests currently queued or executing."""
        return self._in_flight

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has started; no new queries admitted."""
        return self._draining

    # ------------------------------------------------------------------
    async def submit(
        self, request: QueryRequest, tracer: Optional[Tracer] = None
    ) -> Tuple[List[Neighbor], SearchStats]:
        """Admit one query; await and return its (results, stats).

        ``tracer`` (optional) receives the request's queue-wait span and,
        once the batch executes, a graft of the engine's span tree (the
        engine runs on the executor thread, where context variables do
        not propagate, so the batcher activates a dedicated tracer there
        and stitches the result into every traced request).

        Raises :class:`~repro.service.protocol.ProtocolError` with code
        ``overloaded`` (admission bound hit), ``shutting_down`` (drain in
        progress), ``timeout`` (deadline expired) or ``internal`` (the
        engine raised).
        """
        if self._draining:
            raise ProtocolError(
                "shutting_down", "server is draining; retry against a live replica"
            )
        if self._in_flight >= self.max_queue:
            raise ProtocolError(
                "overloaded",
                f"admission queue full ({self.max_queue} in flight); retry later",
            )
        loop = asyncio.get_running_loop()
        timeout_ms = (
            self.default_timeout_ms
            if request.timeout_ms is None
            else request.timeout_ms
        )
        pending = _Pending(
            request=request,
            future=loop.create_future(),
            deadline=time.monotonic() + timeout_ms / 1000.0,
            tracer=tracer,
            enqueued_s=time.perf_counter(),
        )
        self._in_flight += 1
        try:
            self._enqueue(loop, pending)
            try:
                return await asyncio.wait_for(
                    pending.future, timeout=timeout_ms / 1000.0
                )
            except asyncio.TimeoutError:
                raise ProtocolError(
                    "timeout", f"deadline of {timeout_ms:g} ms expired"
                ) from None
        finally:
            self._in_flight -= 1

    def _enqueue(self, loop: "asyncio.AbstractEventLoop", pending: _Pending) -> None:
        key = pending.request.key
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket(similarity=pending.request.similarity)
            self._buckets[key] = bucket
            bucket.timer = loop.call_later(
                self.max_wait_ms / 1000.0, self._flush, key, "timer"
            )
        bucket.items.append(pending)
        if len(bucket.items) >= self.max_batch_size:
            self._flush(key, "size")

    # ------------------------------------------------------------------
    def _flush(self, key: BatchKey, reason: str = "size") -> None:
        """Close the open bucket for ``key`` and start executing it.

        ``reason`` records *why* the batch closed — ``"size"`` (it
        reached ``max_batch_size``), ``"timer"`` (its oldest request
        waited ``max_wait_ms``) or ``"drain"`` (shutdown flush) — and is
        stamped on queue-wait spans and flush log lines.
        """
        bucket = self._buckets.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        now = time.monotonic()
        # Deadline-expired or abandoned requests are dropped *before*
        # execution; their waiters are unblocked by wait_for.
        take = [
            p
            for p in bucket.items
            if not p.future.done()
            and not p.future.cancelled()
            and p.deadline > now
        ]
        dropped = len(bucket.items) - len(take)
        if dropped:
            self._log.warning(
                "batch.dropped_expired", op=key.op, count=dropped
            )
        if not take:
            return
        task = asyncio.get_running_loop().create_task(
            self._execute(key, bucket.similarity, take, reason)
        )
        self._active.add(task)
        task.add_done_callback(self._active.discard)

    async def _execute(
        self,
        key: BatchKey,
        similarity: SimilarityFunction,
        take: List[_Pending],
        reason: str,
    ) -> None:
        loop = asyncio.get_running_loop()
        targets = [p.request.items for p in take]
        flushed_s = time.perf_counter()
        traced = [p for p in take if p.tracer is not None]
        for p in traced:
            p.tracer.record(
                "batcher.queue_wait",
                p.enqueued_s,
                flushed_s,
                flush_reason=reason,
                batch_size=len(take),
            )
        correlation_ids = [
            p.request.correlation_id
            for p in traced
            if p.request.correlation_id is not None
        ]
        self._log.info(
            "batch.flush",
            op=key.op,
            size=len(take),
            reason=reason,
            correlation_ids=correlation_ids,
        )
        # The engine runs on the executor thread, where the event loop's
        # context (and thus any per-request tracer) does not propagate.
        # When any rider asked for a trace, activate one dedicated tracer
        # around the whole engine call and graft its span tree into every
        # traced request afterwards.  A sole traced rider hands its
        # distributed trace id down so engine-side spans (and the cluster
        # router's scatter legs) stay in the same trace.
        engine_tracer = None
        if traced:
            trace_ids = {
                p.tracer.trace_id
                for p in traced
                if p.tracer.trace_id is not None
            }
            engine_tracer = Tracer(
                trace_id=trace_ids.pop() if len(trace_ids) == 1 else None
            )
        # When every rider shares one correlation id (the common case: a
        # batch of one), propagate it onto the executor thread so engine
        # and router log lines — and the router's scatter sub-requests —
        # carry the same id end to end.
        batch_cids = {
            p.request.correlation_id
            for p in take
            if p.request.correlation_id is not None
        }
        engine_cid = batch_cids.pop() if len(batch_cids) == 1 else None

        def _run_engine():
            cid_ctx = (
                with_correlation_id(engine_cid)
                if engine_cid is not None
                else contextlib.nullcontext()
            )
            with cid_ctx:
                if engine_tracer is None:
                    return self._engine.run_batch(key, similarity, targets)
                with engine_tracer.activate():
                    return self._engine.run_batch(key, similarity, targets)

        try:
            results, stats = await loop.run_in_executor(
                self._executor, _run_engine
            )
        except Exception as exc:  # engine failure: fail the whole batch
            self._log.error("batch.failed", op=key.op, error=str(exc))
            error = ProtocolError("internal", f"engine failure: {exc}")
            for p in take:
                if not p.future.done():
                    p.future.set_exception(error)
            return
        if engine_tracer is not None:
            for root in engine_tracer.roots:
                # Link the shared engine span back to every traced
                # request riding in this batch.
                root.set_attribute("correlation_ids", correlation_ids)
                for p in traced:
                    p.tracer.adopt(root)
        self.metrics.record_batch(summarise_stats(stats))
        for p, result, stat in zip(take, results, stats):
            if not p.future.done():
                p.future.set_result((result, stat))

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Stop admitting, flush every open bucket, await in-flight batches.

        Safe to call more than once; after it returns the executor is
        shut down and every admitted request has been answered.
        """
        self._draining = True
        for key in list(self._buckets):
            self._flush(key, "drain")
        while self._active:
            await asyncio.gather(*list(self._active), return_exceptions=True)
            await asyncio.sleep(0)  # let done-callbacks prune the task set
        self._executor.shutdown(wait=True)
