"""Live serving metrics: counters, latency percentiles, batch shapes.

One :class:`ServiceMetrics` instance is shared by the server, the
micro-batcher and the admission controller.  Everything is cheap inline
arithmetic — no background threads — and :meth:`ServiceMetrics.snapshot`
renders the whole state as a JSON-safe dict, which is what the ``stats``
endpoint returns to monitoring clients.

Latency percentiles come from a bounded reservoir of the most recent
completions (default 4096 samples) — recent-window quantiles, the usual
serving-dashboard semantics — while the counters (requests, rejections,
batches, the merged :class:`~repro.core.engine.BatchSummary`-style
totals and :class:`~repro.storage.pages.IOCounters`) cover the whole
process lifetime.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Callable, Deque, Dict, Optional, Sequence, Tuple

from repro.core.engine import BatchSummary
from repro.storage.pages import IOCounters


def percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty sample."""
    if not sorted_samples:
        raise ValueError("percentile of an empty sample")
    rank = min(
        len(sorted_samples) - 1,
        max(0, int(round(fraction * (len(sorted_samples) - 1)))),
    )
    return float(sorted_samples[rank])


class ServiceMetrics:
    """Mutable metrics hub for one server instance.

    Parameters
    ----------
    reservoir_size:
        How many recent completions feed the latency percentiles and the
        recent-QPS gauge.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        reservoir_size: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self.started_at = clock()
        # Lifetime counters.
        self.received = 0
        self.completed = 0
        self.rejected_overload = 0
        self.rejected_bad_request = 0
        self.rejected_shutdown = 0
        self.timeouts = 0
        self.internal_errors = 0
        self.batches = 0
        self.batch_size_histogram: Counter = Counter()
        # Merged engine-side totals (BatchSummary semantics).
        self.queries_summarised = 0
        self.total_transactions = 0
        self.transactions_accessed = 0
        self.entries_scanned = 0
        self.entries_pruned = 0
        self.terminated_early = 0
        self.io = IOCounters()
        # Recent completions: (completed_at, latency_seconds).
        self._latencies: Deque[Tuple[float, float]] = deque(maxlen=reservoir_size)
        # Gauge callback installed by the batcher.
        self._queue_depth: Callable[[], int] = lambda: 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def bind_queue_depth(self, gauge: Callable[[], int]) -> None:
        """Install the live queue-depth gauge (called by the batcher)."""
        self._queue_depth = gauge

    def record_received(self) -> None:
        """One request admitted into parsing (any op)."""
        self.received += 1

    def record_rejection(self, code: str) -> None:
        """One request rejected with a structured error code."""
        if code == "overloaded":
            self.rejected_overload += 1
        elif code == "shutting_down":
            self.rejected_shutdown += 1
        elif code == "timeout":
            self.timeouts += 1
        elif code == "internal":
            self.internal_errors += 1
        else:
            self.rejected_bad_request += 1

    def record_completion(self, latency_seconds: float) -> None:
        """One query answered successfully."""
        self.completed += 1
        self._latencies.append((self._clock(), float(latency_seconds)))

    def record_batch(self, summary: BatchSummary) -> None:
        """One engine batch executed; fold in its merged stats."""
        self.batches += 1
        self.batch_size_histogram[summary.num_queries] += 1
        self.queries_summarised += summary.num_queries
        self.total_transactions = max(
            self.total_transactions, summary.total_transactions
        )
        self.transactions_accessed += summary.transactions_accessed
        self.entries_scanned += summary.entries_scanned
        self.entries_pruned += summary.entries_pruned
        self.terminated_early += summary.terminated_early
        self.io.merge(summary.io)

    # ------------------------------------------------------------------
    # Derived gauges
    # ------------------------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        """Seconds since the metrics hub (≈ the server) started."""
        return max(1e-9, self._clock() - self.started_at)

    @property
    def queue_depth(self) -> int:
        """Requests currently queued or executing in the batcher."""
        return int(self._queue_depth())

    def latency_quantiles(self) -> Optional[Dict[str, float]]:
        """Recent-window p50/p90/p99 latency in milliseconds."""
        samples = sorted(latency for _, latency in self._latencies)
        if not samples:
            return None
        return {
            "p50_ms": 1000.0 * percentile(samples, 0.50),
            "p90_ms": 1000.0 * percentile(samples, 0.90),
            "p99_ms": 1000.0 * percentile(samples, 0.99),
            "max_ms": 1000.0 * samples[-1],
        }

    def recent_qps(self, window_seconds: float = 10.0) -> float:
        """Completions per second over the trailing window."""
        if not self._latencies:
            return 0.0
        now = self._clock()
        horizon = now - window_seconds
        recent = sum(1 for at, _ in self._latencies if at >= horizon)
        return recent / window_seconds

    def mean_batch_size(self) -> float:
        """Average coalesced batch size over the process lifetime."""
        if not self.batches:
            return 0.0
        return self.queries_summarised / self.batches

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view of everything (the ``stats`` endpoint payload)."""
        return {
            "uptime_seconds": self.uptime_seconds,
            "requests": {
                "received": self.received,
                "completed": self.completed,
                "in_flight": self.queue_depth,
                "rejected_overload": self.rejected_overload,
                "rejected_bad_request": self.rejected_bad_request,
                "rejected_shutdown": self.rejected_shutdown,
                "timeouts": self.timeouts,
                "internal_errors": self.internal_errors,
            },
            "throughput": {
                "lifetime_qps": self.completed / self.uptime_seconds,
                "recent_qps": self.recent_qps(),
            },
            "latency": self.latency_quantiles(),
            "batching": {
                "batches": self.batches,
                "mean_batch_size": self.mean_batch_size(),
                # JSON object keys must be strings.
                "size_histogram": {
                    str(size): count
                    for size, count in sorted(self.batch_size_histogram.items())
                },
            },
            "engine": {
                "queries": self.queries_summarised,
                "total_transactions": self.total_transactions,
                "transactions_accessed": self.transactions_accessed,
                "entries_scanned": self.entries_scanned,
                "entries_pruned": self.entries_pruned,
                "terminated_early": self.terminated_early,
                "transactions_read": self.io.transactions_read,
                "pages_read": self.io.pages_read,
                "seeks": self.io.seeks,
            },
        }
