"""Live serving metrics backed by the :mod:`repro.obs` metric registry.

One :class:`ServiceMetrics` instance is shared by the server, the
micro-batcher and the admission controller.  Every lifetime counter lives
in a :class:`~repro.obs.registry.MetricRegistry` — so the same numbers
the ``stats`` endpoint reports are exposed in Prometheus text or JSON
form through the ``metrics`` control op (and ``repro metrics``) — while
the recent-window latency quantiles keep their bounded reservoir of the
most recent completions (default 4096 samples), the usual
serving-dashboard semantics.

The attribute API (``metrics.received``, ``metrics.rejected_overload``,
``metrics.io.pages_read``, ...) is preserved as read-only views over the
registry, so existing callers and tests keep working unchanged.

Percentiles over empty or singleton windows are ``None`` (a single
sample carries no distributional information), never a crash or a fake
zero.
"""

from __future__ import annotations

import time
from collections import Counter as TallyCounter
from collections import deque
from typing import Callable, Deque, Dict, Optional, Sequence, Tuple

from repro.core.engine import BatchSummary
from repro.obs.registry import MetricRegistry
from repro.service.protocol import WIRE_PROTOCOLS
from repro.storage.pages import IOCounters

#: Rejection reasons tracked as labels on ``repro_requests_rejected_total``.
_REJECTION_REASONS = (
    "overloaded",
    "bad_request",
    "shutting_down",
    "timeout",
    "unavailable",
    "internal",
)

#: Batch-size buckets for the exposition histogram (exact sizes are kept
#: in ``batch_size_histogram`` alongside).
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def percentile(
    sorted_samples: Sequence[float], fraction: float
) -> Optional[float]:
    """Nearest-rank percentile of an ascending-sorted sample.

    Returns ``None`` for empty *and* singleton samples: one observation
    carries no distributional information, and pretending it is "the
    p99" misleads dashboards (this is the documented contract of the
    service's percentile reporting).
    """
    if len(sorted_samples) < 2:
        return None
    rank = min(
        len(sorted_samples) - 1,
        max(0, int(round(fraction * (len(sorted_samples) - 1)))),
    )
    return float(sorted_samples[rank])


class ServiceMetrics:
    """Mutable metrics hub for one server instance.

    Parameters
    ----------
    reservoir_size:
        How many recent completions feed the latency percentiles and the
        recent-QPS gauge.
    clock:
        Monotonic time source (injectable for tests).
    registry:
        Optional shared :class:`~repro.obs.registry.MetricRegistry`; by
        default each hub owns a fresh one (exposed as ``.registry``).
    """

    def __init__(
        self,
        reservoir_size: int = 4096,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self._clock = clock
        self.started_at = clock()
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._received = reg.counter(
            "repro_requests_received_total", "Query requests admitted into parsing"
        )
        self._completed = reg.counter(
            "repro_requests_completed_total", "Query requests answered successfully"
        )
        self._rejected = reg.counter(
            "repro_requests_rejected_total",
            "Query requests rejected, by structured error code",
            labelnames=("reason",),
        )
        self._batches = reg.counter(
            "repro_batches_total", "Coalesced engine batches executed"
        )
        self._batch_size = reg.histogram(
            "repro_batch_size",
            "Coalesced batch sizes (queries per engine call)",
            buckets=_BATCH_SIZE_BUCKETS,
        )
        self._latency = reg.histogram(
            "repro_request_latency_seconds",
            "End-to-end request latency (admission to response)",
        )
        # Per-wire-protocol views of the completion path, so a scrape
        # can attribute latency/qps to NDJSON vs binary frames.  Both
        # children are materialised up front: the exposition always
        # carries both labels, even before the first request.
        self._completed_by_wire = reg.counter(
            "repro_requests_completed_by_wire_total",
            "Query requests answered successfully, by wire protocol",
            labelnames=("wire",),
        )
        self._latency_by_wire = reg.histogram(
            "repro_request_latency_by_wire_seconds",
            "End-to-end request latency, by wire protocol",
            labelnames=("wire",),
        )
        for wire in WIRE_PROTOCOLS:
            self._completed_by_wire.labels(wire=wire)
            self._latency_by_wire.labels(wire=wire)
        self._engine_queries = reg.counter(
            "repro_engine_queries_total", "Queries executed through the engine"
        )
        self._engine_transactions = reg.counter(
            "repro_engine_transactions_accessed_total",
            "Transactions whose objective was evaluated",
        )
        self._engine_scanned = reg.counter(
            "repro_engine_entries_scanned_total", "Signature-table entries scanned"
        )
        self._engine_pruned = reg.counter(
            "repro_engine_entries_pruned_total",
            "Signature-table entries pruned by the optimistic bound",
        )
        self._engine_terminated = reg.counter(
            "repro_engine_terminated_early_total",
            "Queries cut off by the early-termination budget",
        )
        self._io_transactions = reg.counter(
            "repro_io_transactions_read_total", "Transactions read from storage"
        )
        self._io_pages = reg.counter(
            "repro_io_pages_read_total", "Pages read from the simulated disk"
        )
        self._io_seeks = reg.counter(
            "repro_io_seeks_total", "Seek runs on the simulated disk"
        )
        self._queue_gauge = reg.gauge(
            "repro_queue_depth", "Requests currently queued or executing"
        )
        self._uptime_gauge = reg.gauge(
            "repro_uptime_seconds", "Seconds since the server started"
        )
        self._uptime_gauge.set_function(lambda: self.uptime_seconds)
        # Largest per-query database size seen (a max, not a counter).
        self._total_transactions_gauge = reg.gauge(
            "repro_engine_total_transactions",
            "Largest per-query database size observed",
        )
        # Exact batch sizes (the exposition histogram only keeps buckets).
        self.batch_size_histogram: TallyCounter = TallyCounter()
        # Recent completions: (completed_at, latency_seconds).
        self._latencies: Deque[Tuple[float, float]] = deque(maxlen=reservoir_size)
        # Gauge callback installed by the batcher.
        self._queue_depth: Callable[[], int] = lambda: 0
        self._queue_gauge.set_function(lambda: float(self._queue_depth()))

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def bind_queue_depth(self, gauge: Callable[[], int]) -> None:
        """Install the live queue-depth gauge (called by the batcher)."""
        self._queue_depth = gauge

    def record_received(self) -> None:
        """One request admitted into parsing (any op)."""
        self._received.inc()

    def record_rejection(self, code: str) -> None:
        """One request rejected with a structured error code."""
        reason = code if code in _REJECTION_REASONS else "bad_request"
        self._rejected.labels(reason=reason).inc()

    def record_completion(
        self, latency_seconds: float, wire: str = "ndjson"
    ) -> None:
        """One query answered successfully (over the given wire protocol)."""
        self._completed.inc()
        self._latency.observe(float(latency_seconds))
        self._latencies.append((self._clock(), float(latency_seconds)))
        label = wire if wire in WIRE_PROTOCOLS else "ndjson"
        self._completed_by_wire.labels(wire=label).inc()
        self._latency_by_wire.labels(wire=label).observe(float(latency_seconds))

    def completed_by_wire(self) -> Dict[str, int]:
        """Lifetime completions per wire protocol."""
        return {
            wire: int(self._completed_by_wire.labels(wire=wire).value)
            for wire in WIRE_PROTOCOLS
        }

    def record_batch(self, summary: BatchSummary) -> None:
        """One engine batch executed; fold in its merged stats."""
        self._batches.inc()
        self._batch_size.observe(float(summary.num_queries))
        self.batch_size_histogram[summary.num_queries] += 1
        self._engine_queries.inc(summary.num_queries)
        if summary.total_transactions > self.total_transactions:
            self._total_transactions_gauge.set(float(summary.total_transactions))
        self._engine_transactions.inc(summary.transactions_accessed)
        self._engine_scanned.inc(summary.entries_scanned)
        self._engine_pruned.inc(summary.entries_pruned)
        self._engine_terminated.inc(summary.terminated_early)
        self._io_transactions.inc(summary.io.transactions_read)
        self._io_pages.inc(summary.io.pages_read)
        self._io_seeks.inc(summary.io.seeks)

    # ------------------------------------------------------------------
    # Attribute API (read-only views over the registry)
    # ------------------------------------------------------------------
    @property
    def received(self) -> int:
        return int(self._received.value)

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    @property
    def rejected_overload(self) -> int:
        return int(self._rejected.labels(reason="overloaded").value)

    @property
    def rejected_bad_request(self) -> int:
        return int(self._rejected.labels(reason="bad_request").value)

    @property
    def rejected_shutdown(self) -> int:
        return int(self._rejected.labels(reason="shutting_down").value)

    @property
    def timeouts(self) -> int:
        return int(self._rejected.labels(reason="timeout").value)

    @property
    def rejected_unavailable(self) -> int:
        return int(self._rejected.labels(reason="unavailable").value)

    @property
    def internal_errors(self) -> int:
        return int(self._rejected.labels(reason="internal").value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def queries_summarised(self) -> int:
        return int(self._engine_queries.value)

    @property
    def total_transactions(self) -> int:
        return int(self._total_transactions_gauge.value)

    @property
    def transactions_accessed(self) -> int:
        return int(self._engine_transactions.value)

    @property
    def entries_scanned(self) -> int:
        return int(self._engine_scanned.value)

    @property
    def entries_pruned(self) -> int:
        return int(self._engine_pruned.value)

    @property
    def terminated_early(self) -> int:
        return int(self._engine_terminated.value)

    @property
    def io(self) -> IOCounters:
        """The lifetime I/O totals as an :class:`IOCounters` view."""
        return IOCounters(
            transactions_read=int(self._io_transactions.value),
            pages_read=int(self._io_pages.value),
            seeks=int(self._io_seeks.value),
        )

    # ------------------------------------------------------------------
    # Derived gauges
    # ------------------------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        """Seconds since the metrics hub (≈ the server) started."""
        return max(1e-9, self._clock() - self.started_at)

    @property
    def queue_depth(self) -> int:
        """Requests currently queued or executing in the batcher."""
        return int(self._queue_depth())

    def latency_quantiles(self) -> Dict[str, Optional[float]]:
        """Recent-window latency quantiles in milliseconds.

        ``p50_ms``/``p90_ms``/``p99_ms`` are ``None`` when the window
        holds fewer than two samples; ``max_ms`` is ``None`` only when
        the window is empty.  ``count`` is the window size.
        """
        samples = sorted(latency for _, latency in self._latencies)

        def scaled(fraction: float) -> Optional[float]:
            value = percentile(samples, fraction)
            return None if value is None else 1000.0 * value

        return {
            "p50_ms": scaled(0.50),
            "p90_ms": scaled(0.90),
            "p99_ms": scaled(0.99),
            "max_ms": 1000.0 * samples[-1] if samples else None,
            "count": len(samples),
        }

    def recent_qps(self, window_seconds: float = 10.0) -> float:
        """Completions per second over the trailing window."""
        if not self._latencies:
            return 0.0
        now = self._clock()
        horizon = now - window_seconds
        recent = sum(1 for at, _ in self._latencies if at >= horizon)
        return recent / window_seconds

    def mean_batch_size(self) -> float:
        """Average coalesced batch size over the process lifetime."""
        batches = self.batches
        if not batches:
            return 0.0
        return self.queries_summarised / batches

    # ------------------------------------------------------------------
    def to_prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return self.registry.to_prometheus_text()

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view of everything (the ``stats`` endpoint payload)."""
        return {
            "uptime_seconds": self.uptime_seconds,
            "requests": {
                "received": self.received,
                "completed": self.completed,
                "completed_by_wire": self.completed_by_wire(),
                "in_flight": self.queue_depth,
                "rejected_overload": self.rejected_overload,
                "rejected_bad_request": self.rejected_bad_request,
                "rejected_shutdown": self.rejected_shutdown,
                "timeouts": self.timeouts,
                "rejected_unavailable": self.rejected_unavailable,
                "internal_errors": self.internal_errors,
            },
            "throughput": {
                "lifetime_qps": self.completed / self.uptime_seconds,
                "recent_qps": self.recent_qps(),
            },
            "latency": self.latency_quantiles(),
            "batching": {
                "batches": self.batches,
                "mean_batch_size": self.mean_batch_size(),
                # JSON object keys must be strings.
                "size_histogram": {
                    str(size): count
                    for size, count in sorted(self.batch_size_histogram.items())
                },
            },
            "engine": {
                "queries": self.queries_summarised,
                "total_transactions": self.total_transactions,
                "transactions_accessed": self.transactions_accessed,
                "entries_scanned": self.entries_scanned,
                "entries_pruned": self.entries_pruned,
                "terminated_early": self.terminated_early,
                "transactions_read": self.io.transactions_read,
                "pages_read": self.io.pages_read,
                "seeks": self.io.seeks,
            },
        }
