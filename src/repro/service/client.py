"""Blocking client for the query service, plus a closed-loop load driver.

:class:`ServiceClient` is the one-connection, one-outstanding-request
client the CLI and the tests use: it speaks the NDJSON protocol of
:mod:`repro.service.protocol` and raises :class:`ServiceError` with the
server's structured code (``overloaded``, ``timeout``, ...) on
rejection — callers can branch on backpressure explicitly.

:func:`run_load` is the closed-loop load generator behind the serving
benchmark and the CI smoke: ``concurrency`` threads each hold a
connection and keep exactly one request in flight (issue, await, issue
the next), which is how the dynamic micro-batcher sees coalescable
concurrency.  It returns per-request neighbour lists so callers can
verify byte-identical results against direct engine calls.
"""

from __future__ import annotations

import base64
import random
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.search import Neighbor
from repro.service import frames
from repro.service.protocol import (
    WIRE_PROTOCOLS,
    decode_neighbors,
    decode_response,
    encode_request,
)
from repro.service.resilience import RetryPolicy


class ServiceError(RuntimeError):
    """A structured rejection from the server (code + message)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServiceClient:
    """Blocking NDJSON client holding one TCP connection.

    Usable as a context manager.  Each call sends one request and blocks
    for its response; ``socket_timeout`` bounds the wait on the socket
    itself (independent of the server-side ``timeout_ms`` deadline).

    Resilience (see :doc:`docs/resilience`): construction still connects
    eagerly (so "no server there" fails fast), but after any socket
    failure the connection is torn down and the *next* call reconnects.
    With ``retries > 0`` each call transparently retries connection
    errors and the retryable server codes (``overloaded``,
    ``unavailable``) under exponential backoff with full jitter, within
    an optional per-call ``deadline`` budget.  Mutations are always
    stamped with an idempotency key ``(client_id, request_id)``, so a
    retry after an ambiguous failure — connection dropped between send
    and ack — can never double-apply.

    ``wire`` picks the wire protocol (see :doc:`docs/wire`):
    ``"ndjson"`` is the classic newline-delimited JSON; ``"binary"``
    negotiates the length-prefixed frame protocol of
    :mod:`repro.service.frames` with a ``hello`` first request and
    fails if the server refuses; ``"auto"`` (default) tries binary and
    silently falls back to NDJSON when the server declines (or predates
    the op).  :attr:`wire` reports what this connection actually
    negotiated.  Reconnects renegotiate from scratch.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7807,
        socket_timeout: Optional[float] = 60.0,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        deadline: Optional[float] = None,
        retry_seed: Optional[int] = None,
        client_id: Optional[str] = None,
        wire: str = "auto",
    ) -> None:
        if wire not in ("auto",) + WIRE_PROTOCOLS:
            known = ", ".join(("auto",) + WIRE_PROTOCOLS)
            raise ValueError(f"unknown wire {wire!r}; known: {known}")
        self.host = host
        self.port = int(port)
        self._socket_timeout = socket_timeout
        #: Requested wire protocol ("auto" negotiates with fallback).
        self.wire_preference = wire
        #: The wire protocol the current connection actually speaks.
        self.wire = "ndjson"
        # Reused receive buffers for the binary frame path (grown
        # geometrically, never shrunk — steady-state reads allocate
        # nothing but the decoded response).
        self._header_buf = bytearray(frames.HEADER.size)
        self._payload_buf = bytearray(4096)
        #: Stable identity half of the idempotency key.
        self.client_id = (
            client_id if client_id is not None else uuid.uuid4().hex[:16]
        )
        self.retry_policy = RetryPolicy(
            max_retries=int(retries),
            base_delay=backoff_base,
            max_delay=backoff_max,
            deadline=deadline,
            rng=random.Random(retry_seed) if retry_seed is not None else None,
        )
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0
        self._next_request_id = 0
        self._lock = threading.Lock()
        #: Lifetime resilience counters.
        self.retries_attempted = 0
        self.reconnects = 0
        #: Full decoded response of the most recent successful request —
        #: traced queries carry ``trace`` (span tree) and
        #: ``correlation_id`` here beyond the (results, stats) pair the
        #: convenience methods return.
        self.last_response: Dict[str, object] = {}
        self._connect()  # eager: constructing against no server raises

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        self._open_socket()
        self.wire = "ndjson"
        if self.wire_preference == "ndjson":
            return
        try:
            self._negotiate_binary()
        except (ConnectionError, OSError):
            if self.wire_preference == "binary":
                self._teardown()
                raise
            # "auto" is best-effort: transport trouble during the hello
            # (timeout, garbled ack, server gone mid-exchange) must not
            # fail a connect that plain NDJSON would survive.  The
            # stream position is unknown, so reconnect and stay NDJSON.
            self._teardown()
            self._open_socket()
            self.wire = "ndjson"

    def _open_socket(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self._socket_timeout
        )
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")

    def _negotiate_binary(self) -> None:
        """Send the ``hello`` first request and switch wires on an ack.

        Every connection starts in NDJSON, so the hello and its ack are
        one plain request/response exchange — safe to readline because
        the protocol is lockstep (the server sends nothing ahead of the
        ack).  An explicit ``wire="binary"`` preference turns a refusal
        into :class:`ServiceError`; ``"auto"`` just stays on NDJSON (the
        server may predate the op or have binary disabled by policy).
        """
        hello = {"op": "hello", "wire": "binary", "id": 0}
        self._sock.sendall(encode_request(hello))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection during hello")
        try:
            response = decode_response(line)
        except ValueError as exc:
            raise ConnectionError(f"malformed hello response: {exc}") from exc
        if response.get("ok"):
            self.wire = "binary"
            return
        if self.wire_preference == "binary":
            error = response.get("error") or {}
            self._teardown()
            raise ServiceError(
                str(error.get("code", "internal")),
                str(error.get("message", "server refused binary wire")),
            )

    def _recv_exact(self, view: memoryview) -> None:
        """Fill ``view`` from the socket; ConnectionError on early EOF."""
        offset = 0
        while offset < len(view):
            read = self._sock.recv_into(view[offset:])
            if read == 0:
                raise ConnectionError("server closed the connection")
            offset += read

    def _read_frame_response(self) -> Dict[str, object]:
        """Read one binary frame and decode it to the NDJSON response shape.

        Reuses the header/payload buffers across calls.  Any framing
        violation becomes :class:`ConnectionError` — like a garbled
        NDJSON line, it means the stream position is unknown and the
        connection must be torn down.
        """
        self._recv_exact(memoryview(self._header_buf))
        try:
            frame_type, length = frames.decode_header(bytes(self._header_buf))
        except frames.FrameError as exc:
            raise ConnectionError(f"malformed frame header: {exc}") from exc
        if length > len(self._payload_buf):
            new_size = len(self._payload_buf)
            while new_size < length:
                new_size *= 2
            self._payload_buf = bytearray(new_size)
        payload = memoryview(self._payload_buf)[:length]
        self._recv_exact(payload)
        try:
            response = frames.decode_payload(frame_type, bytes(payload))
        except frames.FrameError as exc:
            raise ConnectionError(f"malformed frame payload: {exc}") from exc
        if "ok" not in response:
            raise ConnectionError("frame payload is not a response object")
        return response

    def _teardown(self) -> None:
        """Drop a (possibly half-read) connection so the next call
        reconnects cleanly.

        After a timeout or send/recv error the stream position is
        unknown — a late response for the failed request could otherwise
        be mis-read as the answer to the *next* one.
        """
        reader, sock = self._reader, self._sock
        self._reader = None
        self._sock = None
        if reader is not None:
            try:
                reader.close()
            except OSError:
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()
            self.reconnects += 1

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Send one request dict; block for and return the response dict.

        Fills in a fresh ``id`` when the message has none; raises
        :class:`ServiceError` if the server answered ``ok: false``.
        Connection failures tear the socket down (the next call
        reconnects); with retries configured they — and retryable server
        codes — are retried under backoff within the deadline budget.
        """
        with self._lock:
            if "id" not in message:
                self._next_id += 1
                message = dict(message, id=self._next_id)
            policy = self.retry_policy
            deadline_at = policy.start()
            attempt = 0
            while True:
                try:
                    self._ensure_connected()
                    if self.wire == "binary":
                        self._sock.sendall(frames.encode_request_frame(message))
                        response = self._read_frame_response()
                    else:
                        self._sock.sendall(encode_request(message))
                        line = self._reader.readline()
                        if not line:
                            raise ConnectionError(
                                "server closed the connection"
                            )
                        try:
                            response = decode_response(line)
                        except ValueError as exc:
                            # A truncated/garbled line means the stream
                            # state is unknown — a transport failure,
                            # not a reply.
                            raise ConnectionError(
                                f"malformed response line: {exc}"
                            ) from exc
                except (OSError, ConnectionError) as exc:
                    # Satellite invariant: never leave a half-read
                    # socket behind — tear down, then maybe retry.
                    self._teardown()
                    retry, delay = policy.should_retry(attempt, deadline_at)
                    if not retry:
                        raise
                    self.retries_attempted += 1
                    attempt += 1
                    time.sleep(delay)
                    continue
                if not response["ok"]:
                    error = response.get("error") or {}
                    code = str(error.get("code", "internal"))
                    detail = str(error.get("message", "unknown server error"))
                    if policy.is_retryable_code(code):
                        retry, delay = policy.should_retry(attempt, deadline_at)
                        if retry:
                            self.retries_attempted += 1
                            attempt += 1
                            time.sleep(delay)
                            continue
                    raise ServiceError(code, detail)
                self.last_response = response
                return response

    # ------------------------------------------------------------------
    def knn(
        self,
        items: Sequence[int],
        similarity: str = "match_ratio",
        k: int = 5,
        early_termination: Optional[float] = None,
        sort_by: str = "optimistic",
        timeout_ms: Optional[float] = None,
        trace: bool = False,
        correlation_id: Optional[str] = None,
        candidate_tier: Optional[str] = None,
        target_recall: Optional[float] = None,
    ) -> Tuple[List[Neighbor], Dict[str, object]]:
        """k-NN over the wire; returns (neighbours, per-query stats dict).

        ``trace=True`` asks the server for the request's span tree; read
        it from ``last_response["trace"]`` (with
        ``last_response["correlation_id"]``) after the call.
        ``correlation_id`` stamps the caller's own id on the request —
        the server honours it instead of minting one, and a cluster
        router forwards it to every shard, so one id joins the log lines
        of every process the request touched.
        ``candidate_tier="lsh"`` (optionally with ``target_recall``)
        asks a sketch-enabled server for the approximate sketch tier;
        the returned stats then carry ``estimated_recall``.
        """
        message: Dict[str, object] = {
            "op": "knn",
            "items": list(map(int, items)),
            "similarity": similarity,
            "k": int(k),
            "sort_by": sort_by,
        }
        if early_termination is not None:
            message["early_termination"] = float(early_termination)
        if timeout_ms is not None:
            message["timeout_ms"] = float(timeout_ms)
        if trace:
            message["trace"] = True
        if correlation_id is not None:
            message["correlation_id"] = str(correlation_id)
        if candidate_tier is not None:
            message["candidate_tier"] = str(candidate_tier)
        if target_recall is not None:
            message["target_recall"] = float(target_recall)
        response = self.request(message)
        return decode_neighbors(response["results"]), response["stats"]

    def range_query(
        self,
        items: Sequence[int],
        similarity: str,
        threshold: float,
        timeout_ms: Optional[float] = None,
        trace: bool = False,
        correlation_id: Optional[str] = None,
        candidate_tier: Optional[str] = None,
        target_recall: Optional[float] = None,
    ) -> Tuple[List[Neighbor], Dict[str, object]]:
        """Range query (similarity >= threshold) over the wire."""
        message: Dict[str, object] = {
            "op": "range",
            "items": list(map(int, items)),
            "similarity": similarity,
            "threshold": float(threshold),
        }
        if timeout_ms is not None:
            message["timeout_ms"] = float(timeout_ms)
        if trace:
            message["trace"] = True
        if correlation_id is not None:
            message["correlation_id"] = str(correlation_id)
        if candidate_tier is not None:
            message["candidate_tier"] = str(candidate_tier)
        if target_recall is not None:
            message["target_recall"] = float(target_recall)
        response = self.request(message)
        return decode_neighbors(response["results"]), response["stats"]

    # ------------------------------------------------------------------
    # Mutations (live indexes only)
    # ------------------------------------------------------------------
    def _idempotency_key(self) -> Dict[str, object]:
        """A fresh mutation key, stable across retries of one call."""
        self._next_request_id += 1
        return {"client_id": self.client_id, "request_id": self._next_request_id}

    def insert(self, items: Sequence[int]) -> int:
        """Durably insert a transaction; returns its logical tid.

        The server acknowledges only after the WAL append — a returned
        tid survives a crash.  The request carries an idempotency key,
        so a retry that races a lost ack returns the original tid
        instead of inserting twice.  Raises :class:`ServiceError` with
        ``bad_request`` against a read-only (frozen) server.
        """
        message: Dict[str, object] = {
            "op": "insert",
            "items": list(map(int, items)),
        }
        message.update(self._idempotency_key())
        return int(self.request(message)["tid"])

    def delete(self, tid: int) -> None:
        """Durably delete the transaction at a logical tid.

        Idempotency-keyed like :meth:`insert` — a retried delete whose
        first attempt landed is a no-op, never a second delete of
        whichever row has shifted into that tid.
        """
        message: Dict[str, object] = {"op": "delete", "tid": int(tid)}
        message.update(self._idempotency_key())
        self.request(message)

    def compact(self, repartition: bool = False) -> Dict[str, object]:
        """Fold the delta/tombstones into a fresh base; returns the report."""
        message: Dict[str, object] = {"op": "compact"}
        if repartition:
            message["repartition"] = True
        return dict(self.request(message)["compaction"])

    def checkpoint(self) -> int:
        """Snapshot state and truncate the WAL; returns the applied seqno."""
        return int(self.request({"op": "checkpoint"})["applied_seqno"])

    def metrics(self, format: str = "json", scope: str = "self") -> object:
        """A metric registry exposition, as ``json`` (dict) or
        ``prometheus`` (exposition text).

        ``scope="self"`` is the answering server's own registry;
        ``scope="cluster"`` (routers only) is the exact merge of every
        node's registry plus the router's — counters and histograms
        summed, gauges labelled by source process.
        """
        message: Dict[str, object] = {"op": "metrics", "format": format}
        if scope != "self":
            message["scope"] = scope
        response = self.request(message)
        return response["metrics"]

    def profile(
        self,
        duration_s: Optional[float] = None,
        format: str = "folded",
        hz: Optional[float] = None,
        reset: bool = False,
    ) -> Dict[str, object]:
        """Sample the server's thread stacks; returns the profile payload.

        Against a server without a continuous profiler this runs a
        one-shot sampling pass of ``duration_s`` seconds (server default
        1 s); against a continuous profiler it returns the accumulated
        snapshot immediately (``reset=True`` clears it).  ``format`` is
        ``"folded"`` (flamegraph-compatible text in ``profile``) or
        ``"json"`` (the raw snapshot dict).
        """
        message: Dict[str, object] = {"op": "profile", "format": format}
        if duration_s is not None:
            message["duration_s"] = float(duration_s)
        if hz is not None:
            message["hz"] = float(hz)
        if reset:
            message["reset"] = True
        response = dict(self.request(message))
        response.pop("id", None)
        response.pop("ok", None)
        return response

    def stats(self) -> Dict[str, object]:
        """The server's live metrics snapshot plus index description."""
        response = self.request({"op": "stats"})
        out = {"stats": response["stats"], "index": response.get("index", {})}
        if "slo" in response:
            out["slo"] = response["slo"]
        return out

    def ping(self) -> bool:
        """Liveness probe; True when the server answers."""
        return bool(self.request({"op": "ping"}).get("pong"))

    def health(self) -> Dict[str, object]:
        """Readiness report: ``ready``, ``degraded``, ``draining``,
        ``mutable`` and the compaction breaker state."""
        response = self.request({"op": "health"})
        return {
            key: response.get(key)
            for key in ("ready", "degraded", "draining", "mutable", "breaker")
        }

    def shutdown(self) -> bool:
        """Ask the server to drain and exit gracefully."""
        return bool(self.request({"op": "shutdown"}).get("draining"))

    # ------------------------------------------------------------------
    # Cluster operations (see repro.cluster and docs/cluster.md)
    # ------------------------------------------------------------------
    def replicate(self, shard: str, wal_bytes: bytes) -> Dict[str, object]:
        """Ship raw WAL record bytes to a replica node (cluster internal).

        The payload travels as a dense ``FRAME_REPLICATE`` on a binary
        connection and base64 inside JSON otherwise; either way the
        replica applies the exact CRC-framed records the owner wrote.
        Returns the replica's ack (``applied_seqno``, ``applied``).
        """
        message: Dict[str, object] = {
            "op": "replicate",
            "shard": str(shard),
            "wal_b64": base64.b64encode(bytes(wal_bytes)).decode("ascii"),
        }
        return self.request(message)

    def promote(self) -> Dict[str, object]:
        """Promote a replica node to shard owner (cluster failover)."""
        return self.request({"op": "promote"})

    def role(self) -> Dict[str, object]:
        """A cluster node's role report (``role``, ``shard``, seqnos)."""
        return self.request({"op": "role"})

    def rows(self, tids: Sequence[int]) -> List[List[int]]:
        """Fetch raw transaction rows by node-local tid (cluster internal)."""
        message = {"op": "rows", "tids": [int(t) for t in tids]}
        return [list(map(int, row)) for row in self.request(message)["rows"]]

    def ring(self) -> Dict[str, object]:
        """The router's hash-ring and shard-topology description."""
        response = dict(self.request({"op": "ring"}))
        response.pop("id", None)
        response.pop("ok", None)
        return response

    def rebalance(
        self, source: str, target: str, fraction: float = 0.5
    ) -> Dict[str, object]:
        """Ask the router to move ``fraction`` of a shard's ring span —
        and the rows hashed into it — from ``source`` to ``target``,
        online.  Returns the move report (rows moved, ring state)."""
        message: Dict[str, object] = {
            "op": "rebalance",
            "source": str(source),
            "target": str(target),
            "fraction": float(fraction),
        }
        response = dict(self.request(message))
        response.pop("id", None)
        response.pop("ok", None)
        return response


def wait_ready(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> bool:
    """Poll until a server answers ``ping`` at (host, port), or time out."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServiceClient(host, port, socket_timeout=interval * 10) as client:
                if client.ping():
                    return True
        except (OSError, ConnectionError, ValueError):
            time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# Closed-loop load generation
# ----------------------------------------------------------------------
@dataclass
class RequestRecord:
    """Outcome of one load-generator request.

    One record per *logical* request: retries fold into this single
    record (``attempts`` counts them), so a retried-then-succeeded
    request is reported exactly once and never double-counted.
    """

    query_index: int
    latency_seconds: float
    neighbors: Optional[List[Neighbor]] = None
    error_code: Optional[str] = None
    attempts: int = 1


@dataclass
class LoadResult:
    """Aggregate outcome of one :func:`run_load` run."""

    concurrency: int
    elapsed_seconds: float
    records: List[RequestRecord] = field(default_factory=list)
    #: Wire protocol the load clients actually negotiated.
    wire: str = "ndjson"

    @property
    def completed(self) -> int:
        """Logical requests that returned results (retried ones count once)."""
        return sum(1 for r in self.records if r.error_code is None)

    @property
    def rejected(self) -> int:
        """Logical requests whose final outcome was a structured error."""
        return sum(1 for r in self.records if r.error_code is not None)

    @property
    def retried(self) -> int:
        """Logical requests that needed more than one attempt."""
        return sum(1 for r in self.records if r.attempts > 1)

    @property
    def total_attempts(self) -> int:
        """Wire-level attempts across all logical requests."""
        return sum(r.attempts for r in self.records)

    @property
    def qps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.completed / max(self.elapsed_seconds, 1e-9)

    def latencies_ms(self) -> List[float]:
        """Sorted completed-request latencies in milliseconds."""
        return sorted(
            1000.0 * r.latency_seconds
            for r in self.records
            if r.error_code is None
        )


def run_load(
    host: str,
    port: int,
    queries: Sequence[Sequence[int]],
    similarity: str = "match_ratio",
    k: int = 10,
    threshold: Optional[float] = None,
    early_termination: Optional[float] = None,
    concurrency: int = 8,
    total_requests: Optional[int] = None,
    timeout_ms: Optional[float] = None,
    socket_timeout: Optional[float] = 120.0,
    retries: int = 0,
    wire: str = "auto",
) -> LoadResult:
    """Closed-loop burst: ``concurrency`` clients, one request in flight each.

    Request ``i`` targets ``queries[i % len(queries)]`` (round-robin), so
    any ``total_requests`` maps deterministically onto the query set and
    results stay comparable with direct engine execution.  Rejections
    (``overloaded``/``timeout``) are recorded per request, never raised.
    With ``retries > 0`` each client retries retryable outcomes under
    backoff; a request's final outcome is still recorded exactly once,
    with its attempt count.  ``wire`` is handed to every
    :class:`ServiceClient`; the protocol they negotiated is reported in
    :attr:`LoadResult.wire` so benchmarks can label their rows.
    """
    if not queries:
        raise ValueError("run_load needs at least one query")
    total = len(queries) if total_requests is None else int(total_requests)
    counter = {"next": 0}
    counter_lock = threading.Lock()
    records: List[Optional[RequestRecord]] = [None] * total
    negotiated: Dict[str, str] = {}

    def worker() -> None:
        with ServiceClient(
            host,
            port,
            socket_timeout=socket_timeout,
            retries=retries,
            wire=wire,
        ) as client:
            with counter_lock:
                negotiated["wire"] = client.wire
            while True:
                with counter_lock:
                    index = counter["next"]
                    if index >= total:
                        return
                    counter["next"] = index + 1
                query_index = index % len(queries)
                items = queries[query_index]
                started = time.monotonic()
                retries_before = client.retries_attempted
                try:
                    if threshold is not None:
                        neighbors, _ = client.range_query(
                            items, similarity, threshold, timeout_ms=timeout_ms
                        )
                    else:
                        neighbors, _ = client.knn(
                            items,
                            similarity,
                            k=k,
                            early_termination=early_termination,
                            timeout_ms=timeout_ms,
                        )
                    records[index] = RequestRecord(
                        query_index=query_index,
                        latency_seconds=time.monotonic() - started,
                        neighbors=neighbors,
                        attempts=1 + client.retries_attempted - retries_before,
                    )
                except ServiceError as exc:
                    records[index] = RequestRecord(
                        query_index=query_index,
                        latency_seconds=time.monotonic() - started,
                        error_code=exc.code,
                        attempts=1 + client.retries_attempted - retries_before,
                    )

    threads = [
        threading.Thread(target=worker, name=f"repro-load-{i}", daemon=True)
        for i in range(max(1, int(concurrency)))
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return LoadResult(
        concurrency=max(1, int(concurrency)),
        elapsed_seconds=elapsed,
        records=[r for r in records if r is not None],
        wire=negotiated.get("wire", "ndjson"),
    )
