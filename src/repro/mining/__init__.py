"""Frequent-itemset mining substrate.

Signature construction (Section 3.1 of the paper) needs the supports of all
sufficiently frequent 2-itemsets; :mod:`repro.mining.support` provides those
counts vectorised.  :mod:`repro.mining.apriori` implements full levelwise
Apriori and association-rule derivation — the market-basket context the
paper builds on (its references [2, 3]).
"""

from repro.mining.apriori import AssociationRule, apriori, association_rules
from repro.mining.streaming import StreamingSupportCounter
from repro.mining.support import PairSupports, count_pair_supports

__all__ = [
    "PairSupports",
    "count_pair_supports",
    "apriori",
    "association_rules",
    "AssociationRule",
    "StreamingSupportCounter",
]
