"""Streaming maintenance of item and pair supports.

The signature construction of Section 3.1 consumes item supports and
2-itemset supports.  For a live system ingesting transactions, those
statistics must be maintainable without rescanning history; this module
provides :class:`StreamingSupportCounter`:

* **item supports** are counted exactly (one counter per item), and
* **pair supports** are counted exactly over a *reservoir sample* of the
  stream (uniform without replacement, Vitter's Algorithm R), bounding
  memory at ``reservoir_size`` transactions while keeping the estimates
  unbiased — the same trade-off the batch ``max_transactions`` option
  makes, but incremental.

``MarketBasketIndex.rebuild`` can then re-learn the partition from a
counter fed by the ingest path instead of re-reading the database.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.data.transaction import TransactionDatabase, as_item_array
from repro.mining.support import PairSupports, count_pair_supports
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class StreamingSupportCounter:
    """Incremental item supports + reservoir-sampled pair supports.

    Parameters
    ----------
    universe_size:
        Size of the item universe.
    reservoir_size:
        How many transactions the pair-support reservoir holds.
    rng:
        Seed/generator for the reservoir's replacement choices.
    """

    def __init__(
        self,
        universe_size: int,
        reservoir_size: int = 10_000,
        rng: RngLike = 0,
    ) -> None:
        check_positive(universe_size, "universe_size")
        check_positive(reservoir_size, "reservoir_size")
        self.universe_size = int(universe_size)
        self.reservoir_size = int(reservoir_size)
        self._rng = ensure_rng(rng)
        self._item_counts = np.zeros(universe_size, dtype=np.int64)
        self._seen = 0
        self._reservoir: List[np.ndarray] = []

    # ------------------------------------------------------------------
    @property
    def num_seen(self) -> int:
        """Total transactions observed so far."""
        return self._seen

    @property
    def reservoir_occupancy(self) -> int:
        """Transactions currently held in the pair-support reservoir."""
        return len(self._reservoir)

    def add(self, transaction: Iterable[int]) -> None:
        """Observe one transaction."""
        items = as_item_array(transaction, self.universe_size)
        self._item_counts[items] += 1
        self._seen += 1
        # Vitter's Algorithm R keeps each seen transaction in the
        # reservoir with probability reservoir_size / num_seen.
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(items)
        else:
            slot = int(self._rng.integers(0, self._seen))
            if slot < self.reservoir_size:
                self._reservoir[slot] = items

    def add_many(self, transactions: Iterable[Iterable[int]]) -> None:
        """Observe a batch of transactions."""
        for transaction in transactions:
            self.add(transaction)

    def add_database(self, db: TransactionDatabase) -> None:
        """Observe a whole database (e.g. the initial bulk load)."""
        if db.universe_size > self.universe_size:
            raise ValueError(
                f"database universe {db.universe_size} exceeds the "
                f"counter's universe {self.universe_size}"
            )
        for tid in range(len(db)):
            self.add(db.items_of(tid))

    # ------------------------------------------------------------------
    def item_supports(self, relative: bool = True) -> np.ndarray:
        """Exact per-item supports over everything seen."""
        if relative:
            if self._seen == 0:
                return self._item_counts.astype(np.float64)
            return self._item_counts / float(self._seen)
        return self._item_counts.copy()

    def pair_supports(self, min_support: float = 0.0) -> PairSupports:
        """Pair supports estimated from the reservoir sample.

        Unbiased for the stream seen so far; exact whenever the stream
        still fits in the reservoir.
        """
        sample = TransactionDatabase(
            self._reservoir, universe_size=self.universe_size
        )
        return count_pair_supports(sample, min_support=min_support)

    def as_sample_database(self) -> TransactionDatabase:
        """The current reservoir as a database (for ad-hoc analysis)."""
        return TransactionDatabase(
            self._reservoir, universe_size=self.universe_size
        )
