"""Levelwise Apriori frequent-itemset mining and association rules.

The paper situates similarity indexing in the market-basket ecosystem built
around association-rule mining (its references [2, 3]).  This module
provides that substrate: a vertical (TID-set) Apriori that shares the
:class:`~repro.data.transaction.TransactionDatabase` posting lists, plus
confidence-based rule derivation.  The peer-recommendation example combines
it with the similarity index.

The implementation uses the standard two ingredients:

* *candidate generation* — join frequent ``(k-1)``-itemsets sharing a
  ``(k-2)``-prefix, then prune candidates with an infrequent subset; and
* *vertical counting* — the TID set of a candidate is the intersection of a
  frequent parent's TID set with one item's posting list, so support
  counting is one :func:`numpy.intersect1d` per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.data.transaction import TransactionDatabase
from repro.utils.validation import check_probability

Itemset = FrozenSet[int]


@dataclass(frozen=True)
class AssociationRule:
    """An association rule ``antecedent -> consequent``."""

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:
        lhs = "{" + ", ".join(map(str, sorted(self.antecedent))) + "}"
        rhs = "{" + ", ".join(map(str, sorted(self.consequent))) + "}"
        return (
            f"{lhs} -> {rhs} "
            f"(support={self.support:.4f}, confidence={self.confidence:.3f}, "
            f"lift={self.lift:.2f})"
        )


def apriori(
    db: TransactionDatabase,
    min_support: float,
    max_size: Optional[int] = None,
) -> Dict[Itemset, float]:
    """Mine all frequent itemsets of relative support >= ``min_support``.

    Parameters
    ----------
    min_support:
        Relative support threshold in ``(0, 1]``.
    max_size:
        Optional cap on itemset cardinality (``None`` = unbounded).

    Returns
    -------
    dict
        ``{itemset: relative support}`` for every frequent itemset,
        including singletons.
    """
    check_probability(min_support, "min_support")
    if min_support <= 0.0:
        raise ValueError("min_support must be > 0 (0 would enumerate 2^|U| sets)")
    n = len(db)
    if n == 0:
        return {}

    min_count = int(np.ceil(min_support * n))
    frequent: Dict[Itemset, float] = {}

    # Level 1: frequent single items, with their TID sets.
    item_counts = db.item_supports(relative=False)
    level_tidsets: Dict[Tuple[int, ...], np.ndarray] = {}
    for item in np.nonzero(item_counts >= min_count)[0]:
        tids = db.postings(int(item))
        level_tidsets[(int(item),)] = tids
        frequent[frozenset((int(item),))] = tids.size / n

    size = 1
    while level_tidsets and (max_size is None or size < max_size):
        candidates = _generate_candidates(sorted(level_tidsets), size)
        next_level: Dict[Tuple[int, ...], np.ndarray] = {}
        frequent_keys = set(level_tidsets)
        for candidate in candidates:
            if not _all_subsets_frequent(candidate, frequent_keys):
                continue
            parent = candidate[:-1]
            tids = np.intersect1d(
                level_tidsets[parent],
                db.postings(candidate[-1]),
                assume_unique=True,
            )
            if tids.size >= min_count:
                next_level[candidate] = tids
                frequent[frozenset(candidate)] = tids.size / n
        level_tidsets = next_level
        size += 1
    return frequent


def _generate_candidates(
    sorted_level: List[Tuple[int, ...]], size: int
) -> List[Tuple[int, ...]]:
    """Join step: merge itemsets sharing their first ``size - 1`` items."""
    candidates: List[Tuple[int, ...]] = []
    m = len(sorted_level)
    for a in range(m):
        prefix = sorted_level[a][:-1]
        for b in range(a + 1, m):
            if sorted_level[b][:-1] != prefix:
                break
            candidates.append(sorted_level[a] + (sorted_level[b][-1],))
    return candidates


def _all_subsets_frequent(
    candidate: Tuple[int, ...], frequent_keys: set
) -> bool:
    """Prune step: all (k-1)-subsets of a k-candidate must be frequent."""
    for drop in range(len(candidate)):
        subset = candidate[:drop] + candidate[drop + 1 :]
        if subset not in frequent_keys:
            return False
    return True


def association_rules(
    frequent: Dict[Itemset, float],
    min_confidence: float,
) -> List[AssociationRule]:
    """Derive association rules from frequent itemsets.

    Enumerates, for every frequent itemset of size >= 2, all non-empty
    proper subsets as antecedents, and keeps the rules meeting
    ``min_confidence``.  Rules are returned sorted by descending confidence,
    then descending support.
    """
    check_probability(min_confidence, "min_confidence")
    rules: List[AssociationRule] = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        items = sorted(itemset)
        # Enumerate all non-empty proper subsets via bitmasks.
        for mask in range(1, (1 << len(items)) - 1):
            antecedent = frozenset(
                items[i] for i in range(len(items)) if mask & (1 << i)
            )
            antecedent_support = frequent.get(antecedent)
            if not antecedent_support:
                continue
            confidence = support / antecedent_support
            if confidence < min_confidence:
                continue
            consequent = itemset - antecedent
            consequent_support = frequent.get(consequent, 0.0)
            lift = (
                confidence / consequent_support if consequent_support else float("inf")
            )
            rules.append(
                AssociationRule(
                    antecedent=antecedent,
                    consequent=consequent,
                    support=support,
                    confidence=confidence,
                    lift=lift,
                )
            )
    rules.sort(key=lambda r: (-r.confidence, -r.support, sorted(r.antecedent)))
    return rules
