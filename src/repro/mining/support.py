"""Item-pair support counting.

The signature-construction step of the paper builds a graph over items with
one edge per 2-itemset of at least a minimum support, weighted by the
inverse of that support.  This module computes exactly those pair supports.

The counting is vectorised: each transaction contributes the codes
``i * |U| + j`` of its item pairs (``i < j``), and a single
:func:`numpy.unique` over the concatenated codes yields all pair counts.
For very large databases a uniform transaction sample gives statistically
faithful supports at a fraction of the cost (``max_transactions``); the
sample size used is recorded on the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.transaction import TransactionDatabase
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class PairSupports:
    """Relative supports of item pairs.

    Attributes
    ----------
    pairs:
        Array of shape ``(m, 2)``; each row is an item pair ``(i, j)`` with
        ``i < j``.
    supports:
        Relative support of each pair (fraction of counted transactions).
    num_transactions_counted:
        How many transactions the counts are based on (equals the database
        size unless sampling was requested).
    universe_size:
        Item universe size the pairs are drawn from.
    """

    pairs: np.ndarray
    supports: np.ndarray
    num_transactions_counted: int
    universe_size: int

    def __len__(self) -> int:
        return int(self.pairs.shape[0])

    def __iter__(self) -> Iterator[Tuple[int, int, float]]:
        for (i, j), s in zip(self.pairs, self.supports):
            yield int(i), int(j), float(s)

    def as_dict(self) -> Dict[Tuple[int, int], float]:
        """Return ``{(i, j): support}`` with ``i < j``."""
        return {
            (int(i), int(j)): float(s)
            for (i, j), s in zip(self.pairs, self.supports)
        }

    def support_of(self, i: int, j: int) -> float:
        """Support of the pair ``{i, j}``; 0.0 if below the counting threshold."""
        if i == j:
            raise ValueError("a pair requires two distinct items")
        lo, hi = (i, j) if i < j else (j, i)
        code = lo * self.universe_size + hi
        codes = self.pairs[:, 0] * self.universe_size + self.pairs[:, 1]
        index = np.searchsorted(codes, code)
        if index < codes.size and codes[index] == code:
            return float(self.supports[index])
        return 0.0


def _pair_codes(items: np.ndarray, universe_size: int) -> np.ndarray:
    """Codes ``i * |U| + j`` of all pairs ``i < j`` in a sorted item array."""
    size = items.size
    if size < 2:
        return np.empty(0, dtype=np.int64)
    left, right = np.triu_indices(size, k=1)
    return items[left] * universe_size + items[right]


def count_pair_supports(
    db: TransactionDatabase,
    min_support: float = 0.0,
    max_transactions: Optional[int] = None,
    rng: RngLike = 0,
) -> PairSupports:
    """Count the relative supports of all item pairs in ``db``.

    Parameters
    ----------
    min_support:
        Pairs below this relative support are dropped from the result (the
        paper's "predefined minimum support" for graph edges).
    max_transactions:
        If given and smaller than the database, count over a uniform random
        sample of this many transactions instead of the full database.
    rng:
        Seed or generator for the sampling step (ignored without sampling).

    Returns
    -------
    PairSupports
        Pairs sorted by code (ascending ``(i, j)``).
    """
    check_probability(min_support, "min_support")
    n = len(db)
    if n == 0:
        return PairSupports(
            pairs=np.empty((0, 2), dtype=np.int64),
            supports=np.empty(0, dtype=np.float64),
            num_transactions_counted=0,
            universe_size=db.universe_size,
        )

    if max_transactions is not None and max_transactions < n:
        generator = ensure_rng(rng)
        tids = generator.choice(n, size=max_transactions, replace=False)
        counted = int(max_transactions)
    else:
        tids = range(n)
        counted = n

    universe = max(db.universe_size, 1)
    code_chunks: List[np.ndarray] = []
    for tid in tids:
        codes = _pair_codes(db.items_of(int(tid)), universe)
        if codes.size:
            code_chunks.append(codes)

    if not code_chunks:
        return PairSupports(
            pairs=np.empty((0, 2), dtype=np.int64),
            supports=np.empty(0, dtype=np.float64),
            num_transactions_counted=counted,
            universe_size=db.universe_size,
        )

    all_codes = np.concatenate(code_chunks)
    unique_codes, counts = np.unique(all_codes, return_counts=True)
    supports = counts / float(counted)
    if min_support > 0.0:
        keep = supports >= min_support
        unique_codes, supports = unique_codes[keep], supports[keep]
    pairs = np.column_stack((unique_codes // universe, unique_codes % universe))
    return PairSupports(
        pairs=pairs.astype(np.int64),
        supports=supports.astype(np.float64),
        num_transactions_counted=counted,
        universe_size=db.universe_size,
    )
