"""Transaction data model.

A *transaction* is a set of item identifiers drawn from a universe
``{0, ..., universe_size - 1}`` (Section 1 of the paper).  The library
stores a database of transactions in a compressed sparse row (CSR) layout —
one flat ``items`` array plus an ``indptr`` offset array — which makes the
whole-database primitives the index needs (match counts against a target,
hamming distances, supports) single NumPy operations instead of per-set
Python loops.

The class still behaves like a sequence of ``frozenset`` for ergonomic use:
``db[i]`` returns the i-th transaction as a ``frozenset`` and iteration
yields ``frozenset`` objects.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import check_positive

TransactionLike = Union[Iterable[int], np.ndarray, frozenset, set]


def as_item_array(
    transaction: TransactionLike,
    universe_size: Optional[int] = None,
) -> np.ndarray:
    """Normalise a transaction into a sorted, duplicate-free int64 array.

    Parameters
    ----------
    transaction:
        Any iterable of non-negative item identifiers.
    universe_size:
        If given, items must lie in ``[0, universe_size)``.

    Raises
    ------
    ValueError
        If items are negative or out of the universe range.
    """
    items = np.unique(np.asarray(list(transaction), dtype=np.int64))
    if items.size and items[0] < 0:
        raise ValueError(f"item identifiers must be non-negative, got {items[0]}")
    if universe_size is not None and items.size and items[-1] >= universe_size:
        raise ValueError(
            f"item {items[-1]} is outside the universe [0, {universe_size})"
        )
    return items


class TransactionDatabase:
    """An immutable collection of transactions in CSR layout.

    Parameters
    ----------
    transactions:
        Iterable of transactions (iterables of non-negative ints).
        Duplicate items within a transaction are removed.
    universe_size:
        Total number of items in the universe.  Defaults to
        ``max(item) + 1`` across the database.

    Notes
    -----
    The inverted postings (item -> sorted TID array) are built lazily on the
    first call to :meth:`match_counts` / :meth:`postings` and cached; they
    are the computational backbone for both the linear-scan ground truth and
    the inverted-index baseline.
    """

    def __init__(
        self,
        transactions: Iterable[TransactionLike],
        universe_size: Optional[int] = None,
    ) -> None:
        arrays = [as_item_array(t, universe_size) for t in transactions]
        sizes = np.fromiter((a.size for a in arrays), dtype=np.int64, count=len(arrays))
        indptr = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        items = (
            np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64)
        )
        if universe_size is None:
            universe_size = int(items.max()) + 1 if items.size else 0
        check_positive(universe_size, "universe_size", strict=False)
        self._items = items
        self._indptr = indptr
        self._sizes = sizes
        self._universe_size = int(universe_size)
        self._postings_indptr: Optional[np.ndarray] = None
        self._postings_tids: Optional[np.ndarray] = None
        self._packed_rows: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        items: np.ndarray,
        indptr: np.ndarray,
        universe_size: int,
    ) -> "TransactionDatabase":
        """Build a database directly from CSR arrays (no copies, no checks
        beyond shape/ordering).  Intended for internal use and fast I/O."""
        db = cls.__new__(cls)
        items = np.ascontiguousarray(items, dtype=np.int64)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0 or indptr[0] != 0:
            raise ValueError("indptr must be 1-D, non-empty and start at 0")
        if indptr[-1] != items.size:
            raise ValueError(
                f"indptr[-1]={indptr[-1]} does not match items size {items.size}"
            )
        db._items = items
        db._indptr = indptr
        db._sizes = np.diff(indptr)
        db._universe_size = int(universe_size)
        db._postings_indptr = None
        db._postings_tids = None
        db._packed_rows = None
        return db

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._indptr.size - 1

    def __getitem__(self, tid: int) -> frozenset:
        return frozenset(int(i) for i in self.items_of(tid))

    def __iter__(self) -> Iterator[frozenset]:
        for tid in range(len(self)):
            yield self[tid]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionDatabase):
            return NotImplemented
        return (
            self._universe_size == other._universe_size
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._items, other._items)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash suffices
        return id(self)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(n={len(self)}, universe={self._universe_size}, "
            f"avg_size={self.avg_transaction_size:.2f})"
        )

    def items_of(self, tid: int) -> np.ndarray:
        """Return the sorted item array of transaction ``tid`` (a view)."""
        if not 0 <= tid < len(self):
            raise IndexError(f"tid {tid} out of range [0, {len(self)})")
        return self._items[self._indptr[tid] : self._indptr[tid + 1]]

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def universe_size(self) -> int:
        """Number of items in the universe ``U``."""
        return self._universe_size

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the raw CSR arrays ``(items, indptr)`` as read-only views.

        ``items[indptr[t]:indptr[t+1]]`` are the sorted items of transaction
        ``t``.  Exposed for vectorised whole-database computations (e.g.
        batch supercoordinate assignment).
        """
        items = self._items.view()
        items.flags.writeable = False
        indptr = self._indptr.view()
        indptr.flags.writeable = False
        return items, indptr

    @property
    def sizes(self) -> np.ndarray:
        """Per-transaction cardinalities ``#T`` (read-only view)."""
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    @property
    def avg_transaction_size(self) -> float:
        """Mean number of items per transaction."""
        return float(self._sizes.mean()) if len(self) else 0.0

    @property
    def density(self) -> float:
        """Fraction of the boolean transaction/item matrix that is 1."""
        if len(self) == 0 or self._universe_size == 0:
            return 0.0
        return float(self._items.size) / (len(self) * self._universe_size)

    @property
    def total_items(self) -> int:
        """Total number of (transaction, item) incidences."""
        return int(self._items.size)

    # ------------------------------------------------------------------
    # Postings / whole-database primitives
    # ------------------------------------------------------------------
    def postings(self, item: int) -> np.ndarray:
        """Return the sorted TIDs of transactions containing ``item``."""
        if not 0 <= item < self._universe_size:
            raise IndexError(
                f"item {item} out of universe [0, {self._universe_size})"
            )
        self._ensure_postings()
        assert self._postings_indptr is not None and self._postings_tids is not None
        start, end = self._postings_indptr[item], self._postings_indptr[item + 1]
        return self._postings_tids[start:end]

    def _ensure_postings(self) -> None:
        if self._postings_indptr is not None:
            return
        counts = np.bincount(self._items, minlength=self._universe_size)
        indptr = np.zeros(self._universe_size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        tids = np.repeat(
            np.arange(len(self), dtype=np.int64), self._sizes
        )
        # Stable sort by item keeps TIDs ascending within each posting list.
        order = np.argsort(self._items, kind="stable")
        self._postings_indptr = indptr
        self._postings_tids = tids[order]

    def match_counts(self, target: TransactionLike) -> np.ndarray:
        """Return ``x(tid) = |T_tid ∩ target|`` for every transaction.

        This is the vectorised primitive behind the linear-scan ground truth
        and the per-query precomputation of the searcher: it touches only the
        posting lists of the target's items, so its cost is proportional to
        the summed support of those items, not to the database size.
        """
        target_items = as_item_array(target, self._universe_size)
        self._ensure_postings()
        assert self._postings_indptr is not None and self._postings_tids is not None
        counts = np.zeros(len(self), dtype=np.int64)
        for item in target_items:
            start = self._postings_indptr[item]
            end = self._postings_indptr[item + 1]
            counts[self._postings_tids[start:end]] += 1
        return counts

    def packed_rows(self) -> np.ndarray:
        """The database as ``(n, words)`` uint64 bitset rows (cached).

        Bit ``i`` of row ``t`` is set iff item ``i`` is in transaction
        ``t`` — the dense representation the popcount kernels of
        :mod:`repro.core.kernels` operate on.  Built lazily on first use
        (cost linear in ``total_items``) and cached, like the postings.
        """
        if self._packed_rows is None:
            from repro.core import kernels

            self._packed_rows = kernels.pack_csr(
                self._items, self._indptr, self._universe_size
            )
        view = self._packed_rows.view()
        view.flags.writeable = False
        return view

    def _packed_wins(self, target_arrays: Sequence[np.ndarray]) -> bool:
        """Heuristic: is the dense popcount kernel cheaper than posting
        walks for this batch?

        Posting work is output-sensitive (summed support of the targets'
        items); the dense kernel always touches every word of every row
        per query.  The factor 4 approximates the per-word cost of the
        AND + byte-LUT popcount relative to one posting increment.
        """
        from repro.core import kernels

        words = kernels.num_words(self._universe_size)
        dense_work = len(target_arrays) * len(self) * words * 4
        self._ensure_postings()
        assert self._postings_indptr is not None
        supports = np.diff(self._postings_indptr)
        posting_work = int(
            sum(int(supports[items].sum()) for items in target_arrays)
        )
        return dense_work < posting_work

    def match_counts_batch(
        self,
        targets: Sequence[TransactionLike],
        kernel: str = "python",
    ) -> np.ndarray:
        """Return the ``(len(targets), len(db))`` matrix of match counts.

        Row ``q`` equals ``match_counts(targets[q])`` exactly (integer
        arithmetic throughout, so batch and per-query results are
        identical).  Posting lists are traversed once per *distinct* item
        across the batch, so overlapping targets — the common case for
        query batches drawn from one distribution — amortise the traversal
        the per-query loop would repeat.

        ``kernel`` selects the execution strategy: ``"python"`` (default)
        walks posting lists, ``"packed"`` forces the dense bitset
        popcount kernel of :mod:`repro.core.kernels`, and ``"auto"``
        picks the packed path only when its estimated cost beats the
        output-sensitive posting walk (dense data, long targets).  All
        strategies return identical matrices.
        """
        if kernel not in ("python", "packed", "auto"):
            raise ValueError(
                f"kernel must be 'python', 'packed' or 'auto', got {kernel!r}"
            )
        target_arrays = [
            as_item_array(t, self._universe_size) for t in targets
        ]
        counts = np.zeros((len(target_arrays), len(self)), dtype=np.int64)
        if not target_arrays:
            return counts
        if kernel == "packed" or (
            kernel == "auto" and self._packed_wins(target_arrays)
        ):
            from repro.core import kernels

            packed_targets = kernels.pack_rows(
                target_arrays, self._universe_size
            )
            return kernels.match_counts_packed(
                self.packed_rows(), packed_targets
            )
        self._ensure_postings()
        assert self._postings_indptr is not None and self._postings_tids is not None
        # Invert the batch: item -> queries containing it.
        queries_of: dict = {}
        for q, items in enumerate(target_arrays):
            for item in items.tolist():
                queries_of.setdefault(item, []).append(q)
        for item, qs in queries_of.items():
            start = self._postings_indptr[item]
            end = self._postings_indptr[item + 1]
            tids = self._postings_tids[start:end]
            if tids.size == 0:
                continue
            if len(qs) == 1:
                counts[qs[0], tids] += 1
            else:
                counts[np.ix_(np.asarray(qs, dtype=np.int64), tids)] += 1
        return counts

    def hamming_distances(self, target: TransactionLike) -> np.ndarray:
        """Return ``y(tid) = |T_tid Δ target|`` for every transaction."""
        target_items = as_item_array(target, self._universe_size)
        matches = self.match_counts(target_items)
        return self._sizes + target_items.size - 2 * matches

    def item_supports(self, relative: bool = True) -> np.ndarray:
        """Return per-item support (fraction of transactions, or raw count)."""
        counts = np.bincount(self._items, minlength=self._universe_size)
        if relative:
            if len(self) == 0:
                return counts.astype(np.float64)
            return counts / float(len(self))
        return counts

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def subset(self, tids: Sequence[int]) -> "TransactionDatabase":
        """Return a new database containing the given transactions, in order."""
        tid_array = np.asarray(tids, dtype=np.int64)
        if tid_array.size and (
            tid_array.min() < 0 or tid_array.max() >= len(self)
        ):
            raise IndexError("subset tids out of range")
        arrays = [self.items_of(int(t)) for t in tid_array]
        sizes = self._sizes[tid_array]
        indptr = np.zeros(tid_array.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        items = (
            np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64)
        )
        return TransactionDatabase.from_arrays(items, indptr, self._universe_size)

    def sample(self, num_transactions: int, rng=None) -> "TransactionDatabase":
        """Return a uniform random sample of transactions (without
        replacement), e.g. for estimating supports on very large data."""
        from repro.utils.rng import ensure_rng

        if not 0 <= num_transactions <= len(self):
            raise ValueError(
                f"num_transactions must be in [0, {len(self)}], "
                f"got {num_transactions}"
            )
        generator = ensure_rng(rng)
        tids = generator.choice(len(self), size=num_transactions, replace=False)
        return self.subset(np.sort(tids))

    def split(
        self, num_holdout: int
    ) -> Tuple["TransactionDatabase", "TransactionDatabase"]:
        """Split off the last ``num_holdout`` transactions as a query set.

        Returns ``(indexed, holdout)``.  Experiments use the holdout as query
        targets drawn from the same distribution as the indexed data.
        """
        if not 0 <= num_holdout <= len(self):
            raise ValueError(
                f"num_holdout must be in [0, {len(self)}], got {num_holdout}"
            )
        cut = len(self) - num_holdout
        return self.subset(range(cut)), self.subset(range(cut, len(self)))

    @classmethod
    def concatenate(
        cls, databases: Sequence["TransactionDatabase"]
    ) -> "TransactionDatabase":
        """Concatenate databases; TIDs of later databases are shifted.

        All inputs must share one universe size (merging shards back into
        a global database, undoing :meth:`split`, etc.).
        """
        if not databases:
            raise ValueError("need at least one database to concatenate")
        universe = databases[0].universe_size
        if any(db.universe_size != universe for db in databases):
            raise ValueError("all databases must share one universe size")
        items = np.concatenate([db._items for db in databases])
        sizes = np.concatenate([db._sizes for db in databases])
        indptr = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        return cls.from_arrays(items, indptr, universe)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialise to a compressed ``.npz`` file."""
        np.savez_compressed(
            path,
            items=self._items,
            indptr=self._indptr,
            universe_size=np.int64(self._universe_size),
        )

    @classmethod
    def load(cls, path) -> "TransactionDatabase":
        """Load a database previously stored with :meth:`save`."""
        with np.load(path) as data:
            return cls.from_arrays(
                data["items"], data["indptr"], int(data["universe_size"])
            )
