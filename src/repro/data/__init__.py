"""Market-basket data substrate.

This package provides the transaction data model
(:class:`~repro.data.transaction.TransactionDatabase`), the synthetic
workload generator of Section 5 of the paper
(:mod:`repro.data.generator`), persistence helpers
(:mod:`repro.data.io`) and dataset statistics (:mod:`repro.data.stats`).
"""

from repro.data.generator import (
    GeneratorConfig,
    MarketBasketGenerator,
    format_spec,
    generate,
    parse_spec,
)
from repro.data.stats import DatasetStats, describe
from repro.data.transaction import TransactionDatabase, as_item_array

__all__ = [
    "TransactionDatabase",
    "as_item_array",
    "GeneratorConfig",
    "MarketBasketGenerator",
    "generate",
    "parse_spec",
    "format_spec",
    "DatasetStats",
    "describe",
]
