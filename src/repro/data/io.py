"""Dataset persistence.

Two interchange formats are supported:

* the native compressed ``.npz`` format (fast, exact; see
  :meth:`~repro.data.transaction.TransactionDatabase.save`), and
* the classic IBM/FIMI text format — one transaction per line, items as
  whitespace-separated integers — so databases can be exchanged with
  external frequent-itemset tooling.

:class:`DatasetCache` memoises generated datasets on disk keyed by their
generator config, which is what lets the nine figure benchmarks share the
exact same databases (and therefore the exact same signature tables).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Callable, Union

from repro.data.generator import GeneratorConfig, MarketBasketGenerator
from repro.data.transaction import TransactionDatabase

PathLike = Union[str, os.PathLike]


def write_text(db: TransactionDatabase, path: PathLike) -> None:
    """Write ``db`` in FIMI text format (one transaction per line)."""
    with open(path, "w", encoding="ascii") as handle:
        for tid in range(len(db)):
            items = db.items_of(tid)
            handle.write(" ".join(str(int(i)) for i in items))
            handle.write("\n")


def read_text(
    path: PathLike, universe_size: Union[int, None] = None
) -> TransactionDatabase:
    """Read a FIMI text file into a :class:`TransactionDatabase`.

    Blank lines are skipped.  Raises :class:`ValueError` on non-integer
    tokens with the offending line number.
    """
    transactions = []
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                transactions.append([int(tok) for tok in stripped.split()])
            except ValueError as exc:
                raise ValueError(
                    f"{path}: line {lineno} contains a non-integer token"
                ) from exc
    return TransactionDatabase(transactions, universe_size=universe_size)


def _config_key(config: GeneratorConfig) -> str:
    """Stable filesystem key for a generator config."""
    payload = repr(config).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()[:16]
    return f"{config.spec}-{digest}"


class DatasetCache:
    """On-disk cache of generated datasets, keyed by generator config.

    Parameters
    ----------
    directory:
        Cache root; created on demand.

    Examples
    --------
    >>> cache = DatasetCache("/tmp/repro-cache")        # doctest: +SKIP
    >>> db = cache.get(GeneratorConfig(10_000, seed=3)) # doctest: +SKIP
    """

    def __init__(self, directory: PathLike) -> None:
        self._directory = Path(directory)

    @property
    def directory(self) -> Path:
        return self._directory

    def path_for(self, config: GeneratorConfig) -> Path:
        """The cache file a config maps to (whether or not it exists)."""
        return self._directory / f"{_config_key(config)}.npz"

    def get(
        self,
        config: GeneratorConfig,
        builder: Union[Callable[[GeneratorConfig], TransactionDatabase], None] = None,
    ) -> TransactionDatabase:
        """Return the dataset for ``config``, generating and storing on miss.

        Parameters
        ----------
        builder:
            Optional replacement for the default
            ``MarketBasketGenerator(config).generate()`` construction.
        """
        path = self.path_for(config)
        if path.exists():
            return TransactionDatabase.load(path)
        if builder is None:
            db = MarketBasketGenerator(config).generate()
        else:
            db = builder(config)
        self._directory.mkdir(parents=True, exist_ok=True)
        tmp_path = path.with_suffix(".tmp.npz")
        db.save(tmp_path)
        os.replace(tmp_path, path)
        return db

    def clear(self) -> int:
        """Delete all cached datasets; returns the number removed."""
        if not self._directory.exists():
            return 0
        removed = 0
        for entry in self._directory.glob("*.npz"):
            entry.unlink()
            removed += 1
        return removed
