"""Synthetic market-basket data generator (Section 5 of the paper).

The paper evaluates on data produced by the Agrawal–Srikant style generator
[AS94], in the variant spelled out in its Section 5:

1. Generate ``L`` *maximal potentially large itemsets* ("patterns").  The
   size of each pattern is Poisson with mean ``I``; each successive pattern
   takes half of its items from the previous pattern and draws the other
   half uniformly at random, so patterns share items.
2. Each pattern ``I`` carries a weight ``w_I`` drawn from an exponential
   distribution with unit mean; weights are normalised into pick
   probabilities (the "L-sided weighted die").
3. Transaction sizes are Poisson with mean ``T``.  A transaction is filled
   by assigning patterns in succession.  If a pattern does not fit exactly,
   it is kept in the current transaction half of the time and moved to the
   next transaction the other half of the time.
4. Before a pattern is added it is *corrupted*: with per-pattern noise level
   ``n_I ~ Normal(0.5, 0.1)`` (variance 0.1), a geometric variate ``G`` with
   parameter ``n_I`` is drawn and ``min(G, |I|)`` randomly chosen items are
   dropped.

Datasets are named with the paper's ``T<T>.I<I>.D<D>`` convention, e.g.
``T10.I6.D100K`` (mean transaction size 10, mean pattern size 6, 100 000
transactions); :func:`parse_spec` and :func:`format_spec` convert between
spec strings and :class:`GeneratorConfig`.

[AS94] R. Agrawal, R. Srikant.  "Fast Algorithms for Mining Association
       Rules in Large Databases."  VLDB 1994.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.data.transaction import TransactionDatabase
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_probability

_SPEC_RE = re.compile(
    r"^T(?P<t>\d+(?:\.\d+)?)\.I(?P<i>\d+(?:\.\d+)?)\.D(?P<d>\d+(?:\.\d+)?)(?P<suffix>[KM]?)$",
    re.IGNORECASE,
)

# Noise levels are clipped into this open interval so the geometric draw is
# always well defined (a parameter of exactly 0 or 1 degenerates).
_NOISE_CLIP = (0.01, 0.99)


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic market-basket generator.

    Attributes
    ----------
    num_transactions:
        Database size ``D``.
    avg_transaction_size:
        Mean transaction size ``T`` (Poisson mean).
    avg_pattern_size:
        Mean size ``I`` of a maximal potentially large itemset.
    num_items:
        Universe size ``|U|``.  The paper uses a universe of 1000 items.
    num_patterns:
        Number ``L`` of potentially large itemsets (paper: 2000).
    carry_fraction:
        Fraction of each successive pattern's items taken from the previous
        pattern (paper: one half).
    noise_mean, noise_std:
        Parameters of the per-pattern noise level distribution
        ``n_I ~ Normal(noise_mean, noise_std**2)`` (paper: mean 0.5,
        variance 0.1).
    spill_probability:
        Probability that a pattern that does not fit in the current
        transaction is moved to the next transaction (paper: one half).
    item_skew:
        Zipf exponent ``s`` skewing the item universe: item ``i`` (0-based
        popularity rank) is drawn with probability proportional to
        ``1 / (i + 1) ** s`` wherever the paper's generator draws an item
        uniformly (initial patterns, fresh pattern fills, the
        empty-transaction fallback).  ``0`` (the default) reproduces the
        paper's uniform universe exactly; positive values concentrate
        patterns on a hot head of the catalogue, which is what cluster
        rebalance and skew-aware partitioning benches need (see
        PAPERS.md: McCauley, Mikkelsen & Pagh).
    seed:
        Seed for the generator; the same config always produces the same
        database.
    spec_suffix:
        How the ``D`` part of :attr:`spec` is scaled: ``""`` for plain
        digits, ``"K"`` for thousands, ``"M"`` for millions, or ``None``
        (the default) to pick the most compact exact form automatically.
        :func:`parse_spec` records the style it parsed so the spec string
        round-trips verbatim.  The field does not affect generation and is
        excluded from equality/hashing.
    """

    num_transactions: int
    avg_transaction_size: float = 10.0
    avg_pattern_size: float = 6.0
    num_items: int = 1000
    num_patterns: int = 2000
    carry_fraction: float = 0.5
    noise_mean: float = 0.5
    noise_std: float = math.sqrt(0.1)
    spill_probability: float = 0.5
    item_skew: float = 0.0
    seed: Optional[int] = field(default=0)
    spec_suffix: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.spec_suffix not in (None, "", "K", "M"):
            raise ValueError(
                "spec_suffix must be one of None, '', 'K', 'M'; "
                f"got {self.spec_suffix!r}"
            )
        check_positive(self.num_transactions, "num_transactions")
        check_positive(self.avg_transaction_size, "avg_transaction_size")
        check_positive(self.avg_pattern_size, "avg_pattern_size")
        check_positive(self.num_items, "num_items")
        check_positive(self.num_patterns, "num_patterns")
        check_probability(self.carry_fraction, "carry_fraction")
        check_probability(self.spill_probability, "spill_probability")
        check_positive(self.noise_std, "noise_std", strict=False)
        check_positive(self.item_skew, "item_skew", strict=False)

    def with_(self, **changes) -> "GeneratorConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **changes)

    @property
    def spec(self) -> str:
        """The ``T·.I·.D·`` name of this configuration."""
        return format_spec(self)


def parse_spec(spec: str, **overrides) -> GeneratorConfig:
    """Parse a paper-style dataset name into a :class:`GeneratorConfig`.

    >>> parse_spec("T10.I6.D100K").num_transactions
    100000

    Additional keyword arguments override config fields, e.g.
    ``parse_spec("T10.I6.D100K", seed=7, num_items=500)``.
    """
    match = _SPEC_RE.match(spec.strip())
    if match is None:
        raise ValueError(
            f"invalid dataset spec {spec!r}; expected e.g. 'T10.I6.D100K'"
        )
    suffix = match.group("suffix").upper()
    multiplier = {"": 1, "K": 1000, "M": 1_000_000}[suffix]
    num_transactions = int(round(float(match.group("d")) * multiplier))
    config = GeneratorConfig(
        num_transactions=num_transactions,
        avg_transaction_size=float(match.group("t")),
        avg_pattern_size=float(match.group("i")),
        spec_suffix=suffix,
    )
    return config.with_(**overrides) if overrides else config


def format_spec(config: GeneratorConfig) -> str:
    """Format a config back into the paper's ``T·.I·.D·`` convention.

    The ``D`` part honours :attr:`GeneratorConfig.spec_suffix` when set, so
    ``format_spec(parse_spec(s)) == s.upper()`` for any valid spec; when the
    suffix style is unset the most compact exact form is chosen.
    """

    def _num(x: float) -> str:
        return f"{x:g}"

    d = config.num_transactions
    suffix = config.spec_suffix
    if suffix is None:
        if d % 1_000_000 == 0:
            suffix = "M"
        elif d % 1000 == 0:
            suffix = "K"
        else:
            suffix = ""
    multiplier = {"": 1, "K": 1000, "M": 1_000_000}[suffix]
    d_part = f"{_num(d / multiplier)}{suffix}"
    return (
        f"T{_num(config.avg_transaction_size)}."
        f"I{_num(config.avg_pattern_size)}.D{d_part}"
    )


class MarketBasketGenerator:
    """Stateful generator producing transactions from a fixed pattern pool.

    The pattern pool (itemsets, weights, noise levels) is drawn once at
    construction; :meth:`generate` can then be called repeatedly to produce
    independent databases from the same consumer-behaviour model, which is
    how the experiments draw held-out query transactions from the *same*
    distribution as the indexed data.
    """

    def __init__(self, config: GeneratorConfig, rng: RngLike = None) -> None:
        self.config = config
        self._rng = ensure_rng(config.seed if rng is None else rng)
        if config.item_skew > 0.0:
            ranks = np.arange(1, config.num_items + 1, dtype=np.float64)
            weights = ranks ** -config.item_skew
            self._item_probabilities: Optional[np.ndarray] = (
                weights / weights.sum()
            )
        else:
            self._item_probabilities = None
        self._patterns = self._build_patterns()
        weights = self._rng.exponential(1.0, size=config.num_patterns)
        self._probabilities = weights / weights.sum()
        noise = self._rng.normal(
            config.noise_mean, config.noise_std, size=config.num_patterns
        )
        self._noise_levels = np.clip(noise, *_NOISE_CLIP)

    # ------------------------------------------------------------------
    @property
    def patterns(self) -> List[np.ndarray]:
        """The maximal potentially large itemsets (for inspection/tests)."""
        return [p.copy() for p in self._patterns]

    @property
    def pattern_probabilities(self) -> np.ndarray:
        """Pick probability of each pattern (normalised exponential weights)."""
        return self._probabilities.copy()

    @property
    def noise_levels(self) -> np.ndarray:
        """Per-pattern corruption levels ``n_I``."""
        return self._noise_levels.copy()

    @property
    def item_probabilities(self) -> Optional[np.ndarray]:
        """Zipf pick probability per item rank, or ``None`` when uniform."""
        if self._item_probabilities is None:
            return None
        return self._item_probabilities.copy()

    def _draw_item(self, stream) -> int:
        """Draw one item id: uniform, or Zipf when ``item_skew > 0``.

        The uniform branch keeps the seed-stream consumption of the
        original generator bit-for-bit, so ``item_skew=0`` databases are
        byte-identical to those produced before the knob existed.
        """
        if self._item_probabilities is None:
            return int(stream.integers(0, self.config.num_items))
        return int(
            stream.choice(self.config.num_items, p=self._item_probabilities)
        )

    # ------------------------------------------------------------------
    def _build_patterns(self) -> List[np.ndarray]:
        config = self.config
        rng = self._rng
        sizes = np.maximum(
            rng.poisson(config.avg_pattern_size, size=config.num_patterns), 1
        )
        sizes = np.minimum(sizes, config.num_items)
        patterns: List[np.ndarray] = []
        previous: Optional[np.ndarray] = None
        for size in sizes:
            size = int(size)
            if previous is None:
                if self._item_probabilities is None:
                    chosen = rng.choice(
                        config.num_items, size=size, replace=False
                    )
                else:
                    chosen = rng.choice(
                        config.num_items,
                        size=size,
                        replace=False,
                        p=self._item_probabilities,
                    )
            else:
                num_carried = min(
                    int(round(size * config.carry_fraction)), previous.size
                )
                carried = rng.choice(previous, size=num_carried, replace=False)
                pattern_set = set(int(i) for i in carried)
                # Fill the remainder with fresh items not already chosen.
                while len(pattern_set) < size:
                    pattern_set.add(self._draw_item(rng))
                chosen = np.fromiter(pattern_set, dtype=np.int64)
            pattern = np.unique(chosen.astype(np.int64))
            patterns.append(pattern)
            previous = pattern
        return patterns

    def _corrupt(self, pattern_index: int) -> np.ndarray:
        """Drop ``min(G, |I|)`` random items from pattern ``pattern_index``."""
        pattern = self._patterns[pattern_index]
        level = self._noise_levels[pattern_index]
        g = self._rng.geometric(level)
        keep = pattern.size - min(int(g), pattern.size)
        if keep <= 0:
            return np.empty(0, dtype=np.int64)
        if keep == pattern.size:
            return pattern
        kept = self._rng.choice(pattern, size=keep, replace=False)
        return kept

    # ------------------------------------------------------------------
    def generate(
        self,
        num_transactions: Optional[int] = None,
        rng: RngLike = None,
    ) -> TransactionDatabase:
        """Generate a database of ``num_transactions`` transactions.

        Parameters
        ----------
        num_transactions:
            Overrides ``config.num_transactions`` when given.
        rng:
            Overrides the generator's internal stream (used to draw extra
            independent samples such as query workloads).
        """
        config = self.config
        n = config.num_transactions if num_transactions is None else num_transactions
        check_positive(n, "num_transactions")
        stream = self._rng if rng is None else ensure_rng(rng)

        target_sizes = np.maximum(
            stream.poisson(config.avg_transaction_size, size=n), 1
        )
        transactions: List[np.ndarray] = []
        pending: Optional[np.ndarray] = None
        pick_pool = _RefillingPool(
            lambda size: stream.choice(
                config.num_patterns, size=size, p=self._probabilities
            ),
            batch=max(4 * n, 1024),
        )
        coin_pool = _RefillingPool(
            lambda size: stream.random(size), batch=max(4 * n, 1024)
        )

        for target_size in target_sizes:
            current: set = set()
            while len(current) < target_size:
                if pending is not None:
                    corrupted, pending = pending, None
                else:
                    corrupted = self._corrupt(int(pick_pool.next()))
                if corrupted.size == 0:
                    continue
                fits = len(current) + corrupted.size <= target_size
                if fits:
                    current.update(int(i) for i in corrupted)
                    continue
                if coin_pool.next() < config.spill_probability:
                    # Move the pattern to the next transaction and close
                    # this one.
                    pending = corrupted
                else:
                    # Keep it in the current transaction even though it
                    # overshoots the target size.
                    current.update(int(i) for i in corrupted)
                break
            if not current:
                # Extremely unlikely (requires repeated full corruption);
                # fall back to a single random item so the database never
                # contains empty transactions.
                current = {self._draw_item(stream)}
            transactions.append(np.fromiter(current, dtype=np.int64))

        return TransactionDatabase(transactions, universe_size=config.num_items)


class _RefillingPool:
    """Amortise per-draw RNG overhead by sampling in large batches."""

    def __init__(self, sampler, batch: int) -> None:
        self._sampler = sampler
        self._batch = batch
        self._buffer = sampler(batch)
        self._cursor = 0

    def next(self):
        if self._cursor >= self._buffer.shape[0]:
            self._buffer = self._sampler(self._batch)
            self._cursor = 0
        value = self._buffer[self._cursor]
        self._cursor += 1
        return value


def generate(
    spec_or_config,
    seed: Optional[int] = None,
    **overrides,
) -> TransactionDatabase:
    """One-shot convenience: generate a database from a spec or config.

    >>> db = generate("T10.I6.D1K", seed=42)
    >>> len(db)
    1000
    """
    if isinstance(spec_or_config, str):
        config = parse_spec(spec_or_config, **overrides)
    elif isinstance(spec_or_config, GeneratorConfig):
        config = spec_or_config.with_(**overrides) if overrides else spec_or_config
    else:
        raise TypeError(
            "spec_or_config must be a spec string or GeneratorConfig, "
            f"got {type(spec_or_config).__name__}"
        )
    if seed is not None:
        config = config.with_(seed=seed)
    return MarketBasketGenerator(config).generate()
