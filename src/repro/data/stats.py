"""Dataset statistics.

Summaries used in the experiment reports (and handy when sanity-checking a
generated workload against its ``T·.I·.D·`` spec).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.data.transaction import TransactionDatabase


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of a transaction database."""

    num_transactions: int
    universe_size: int
    total_items: int
    avg_transaction_size: float
    median_transaction_size: float
    max_transaction_size: int
    min_transaction_size: int
    density: float
    num_items_used: int
    top_item_support: float
    gini_item_support: float

    def as_dict(self) -> Dict[str, float]:
        """Return the stats as a plain dict (for tabular reporting)."""
        return {
            "num_transactions": self.num_transactions,
            "universe_size": self.universe_size,
            "total_items": self.total_items,
            "avg_transaction_size": self.avg_transaction_size,
            "median_transaction_size": self.median_transaction_size,
            "max_transaction_size": self.max_transaction_size,
            "min_transaction_size": self.min_transaction_size,
            "density": self.density,
            "num_items_used": self.num_items_used,
            "top_item_support": self.top_item_support,
            "gini_item_support": self.gini_item_support,
        }


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative vector (0 = uniform)."""
    if values.size == 0:
        return 0.0
    total = values.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(values.astype(np.float64))
    n = sorted_values.size
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * sorted_values).sum()) / (n * total) - (n + 1) / n)


def describe(db: TransactionDatabase) -> DatasetStats:
    """Compute :class:`DatasetStats` for a database."""
    sizes = db.sizes
    supports = db.item_supports(relative=True)
    if len(db) == 0:
        return DatasetStats(
            num_transactions=0,
            universe_size=db.universe_size,
            total_items=0,
            avg_transaction_size=0.0,
            median_transaction_size=0.0,
            max_transaction_size=0,
            min_transaction_size=0,
            density=0.0,
            num_items_used=0,
            top_item_support=0.0,
            gini_item_support=0.0,
        )
    return DatasetStats(
        num_transactions=len(db),
        universe_size=db.universe_size,
        total_items=db.total_items,
        avg_transaction_size=float(sizes.mean()),
        median_transaction_size=float(np.median(sizes)),
        max_transaction_size=int(sizes.max()),
        min_transaction_size=int(sizes.min()),
        density=db.density,
        num_items_used=int((supports > 0).sum()),
        top_item_support=float(supports.max()) if supports.size else 0.0,
        gini_item_support=_gini(supports),
    )
