"""Seeded chaos schedules and the acknowledged-op oracle.

The chaos differential suite drives randomized mutation workloads
against a :class:`~repro.live.index.LiveIndex` whose WAL and checkpoint
I/O run through the errfs shims (:mod:`repro.faults.errfs`), then holds
the survivor to one invariant:

    the terminal logical database is **byte-identical** to replaying
    exactly the acknowledged mutations, in order, over the base —
    zero lost acks, zero duplicated applies.

:class:`AckedOracle` is that replay: it records an op only when the
index acknowledged it (returned normally), and :meth:`AckedOracle.expected_rows`
reproduces the logical row list the index must now hold.  Failed ops —
``OSError`` from an injected fault, or :class:`~repro.faults.plan.SimulatedCrash`
— are *not* recorded; whether their partial effects were rolled back
(writer rewind) or truncated away (crash recovery) is exactly what the
comparison checks.

:func:`run_errfs_schedule` is one self-contained schedule: seeded base
database, seeded fault plan, seeded workload of inserts / deletes /
checkpoints / compactions with retry-on-failure (re-using the op's
idempotency key, which exercises the dedupe table), simulated crashes
with recovery mid-stream, a final forced crash + recovery, and the
oracle verdict.  Everything derives from ``seed``, so a failing
schedule replays exactly.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.partitioning import partition_items
from repro.data.transaction import TransactionDatabase
from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec, SimulatedCrash
from repro.live.index import LiveIndex
from repro.storage.codec import encode_transaction

#: (site, kinds) the errfs schedule generator draws faults from.
_FILE_FAULTS = (
    ("wal.write", ("eio", "enospc", "short_write", "torn_write", "crash")),
    ("wal.fsync", ("eio", "crash")),
    ("wal.truncate", ("eio",)),
    ("checkpoint.write", ("eio", "crash")),
    ("checkpoint.manifest", ("eio", "crash")),
)


class AckedOracle:
    """Replays exactly the acknowledged mutations over the base rows."""

    def __init__(self, base_db: TransactionDatabase) -> None:
        self._rows: List[np.ndarray] = [
            np.asarray(base_db.items_of(tid)) for tid in range(len(base_db))
        ]
        self.acked_inserts = 0
        self.acked_deletes = 0

    def __len__(self) -> int:
        return len(self._rows)

    def acked_insert(self, items) -> None:
        """One acknowledged insert (appends at the logical tail)."""
        self._rows.append(np.asarray(items))
        self.acked_inserts += 1

    def acked_delete(self, logical_tid: int) -> None:
        """One acknowledged delete of a logical tid."""
        del self._rows[int(logical_tid)]
        self.acked_deletes += 1

    def expected_rows(self) -> List[bytes]:
        """The logical rows, each in its exact encoded byte form."""
        return [bytes(encode_transaction(row)) for row in self._rows]

    def diff(self, db: TransactionDatabase) -> Optional[str]:
        """``None`` when ``db`` matches the acked replay byte-for-byte,
        else a human-readable description of the first divergence."""
        expected = self.expected_rows()
        actual = [
            bytes(encode_transaction(db.items_of(tid))) for tid in range(len(db))
        ]
        if len(expected) != len(actual):
            return (
                f"row count mismatch: expected {len(expected)} logical rows "
                f"from the acked replay, index holds {len(actual)}"
            )
        for tid, (want, got) in enumerate(zip(expected, actual)):
            if want != got:
                return f"row {tid} differs from the acked replay"
        return None


@dataclass
class ChaosSummary:
    """What one seeded schedule did, and whether the oracle held."""

    seed: int
    ops_attempted: int = 0
    acked: int = 0
    io_failures: int = 0
    crashes: int = 0
    recoveries: int = 0
    retries: int = 0
    dedupe_hits: int = 0
    faults_injected: int = 0
    verified: bool = False
    mismatch: Optional[str] = None
    fault_plan: Optional[dict] = field(default=None, repr=False)


def _random_plan(rng: random.Random, num_ops: int) -> FaultPlan:
    """Draw 1-3 one-shot fault specs over the file sites."""
    specs = []
    for _ in range(rng.randint(1, 3)):
        site, kinds = _FILE_FAULTS[rng.randrange(len(_FILE_FAULTS))]
        kind = kinds[rng.randrange(len(kinds))]
        specs.append(
            FaultSpec(
                site=site,
                kind=kind,
                after=rng.randint(1, max(2, num_ops)),
                nbytes=rng.randint(0, 24),
            )
        )
    return FaultPlan(specs=tuple(specs), seed=rng.randrange(2**31))


def _abandon(index: LiveIndex) -> None:
    """Drop an index as a crash would: close the raw fd, run no cleanup."""
    try:
        index.wal._file.close()
    except OSError:
        pass


def run_errfs_schedule(
    seed: int,
    root,
    num_ops: int = 40,
    base_rows: int = 24,
    universe_size: int = 24,
    num_signatures: int = 4,
) -> ChaosSummary:
    """Run one seeded errfs chaos schedule; returns its summary.

    ``root`` is a scratch directory; the schedule creates its own index
    directory under it.  Deterministic: the base data, the fault plan,
    and the workload all derive from ``seed``.
    """
    summary = ChaosSummary(seed=seed)
    data_rng = np.random.default_rng(seed)
    rng = random.Random(seed ^ 0x5EED)
    rows = [
        np.sort(
            data_rng.choice(
                universe_size, size=int(data_rng.integers(2, 7)), replace=False
            )
        )
        for _ in range(base_rows)
    ]
    base_db = TransactionDatabase(rows, universe_size=universe_size)
    scheme = partition_items(base_db, num_signatures=num_signatures, rng=0)
    plan = _random_plan(rng, num_ops)
    summary.fault_plan = plan.to_dict()
    injector = FaultInjector(plan)

    path = os.path.join(os.fspath(root), f"chaos-{seed}")
    index = LiveIndex.create(path, base_db, scheme=scheme, injector=injector)
    oracle = AckedOracle(base_db)
    client_id = f"chaos-{seed}"
    request_id = 0
    # The newest acked keyed insert, as (request_id, items, acked_tid):
    # re-issued after the terminal recovery to prove exactly-once
    # survives crash + recovery, not just retries.
    last_acked_insert = None

    def recover() -> LiveIndex:
        summary.crashes += 1
        _abandon(index)
        recovered = LiveIndex.recover(path, injector=injector)
        summary.recoveries += 1
        return recovered

    for _ in range(num_ops):
        summary.ops_attempted += 1
        roll = rng.random()
        total = len(oracle)
        if roll < 0.60 or total <= 2:
            op, payload = "insert", np.sort(
                data_rng.choice(
                    universe_size,
                    size=int(data_rng.integers(2, 7)),
                    replace=False,
                )
            )
        elif roll < 0.85:
            op, payload = "delete", rng.randrange(total)
        elif roll < 0.925:
            op, payload = "checkpoint", None
        else:
            op, payload = "compact", None
        if op in ("insert", "delete"):
            request_id += 1
        # Retry with the op's idempotency key until the outcome is
        # definite — exactly what a resilient client does after an
        # ambiguous failure.  One-shot fault specs exhaust, so four
        # attempts always suffice for a ≤3-spec plan.
        for attempt in range(4):
            if attempt:
                summary.retries += 1
            try:
                if op == "insert":
                    before = index.dedupe.hits
                    tid = index.insert(
                        payload, client_id=client_id, request_id=request_id
                    )
                    summary.dedupe_hits += index.dedupe.hits - before
                    oracle.acked_insert(payload)
                    assert tid == len(oracle) - 1, (
                        f"insert acked tid {tid}, oracle expects "
                        f"{len(oracle) - 1}"
                    )
                    last_acked_insert = (request_id, payload, tid)
                elif op == "delete":
                    before = index.dedupe.hits
                    index.delete(
                        payload, client_id=client_id, request_id=request_id
                    )
                    summary.dedupe_hits += index.dedupe.hits - before
                    oracle.acked_delete(payload)
                elif op == "checkpoint":
                    index.checkpoint()
                else:
                    index.compact()
                summary.acked += 1
                break
            except SimulatedCrash:
                index = recover()
                # The crash may have landed after the record reached the
                # OS but before the ack — an *ambiguous* outcome.  The
                # rebuilt dedupe table is the resolution protocol: a hit
                # means recovery replayed the op (it is durably applied,
                # count it as acknowledged); a miss means it never became
                # durable and the keyed retry below is safe.
                if op in ("insert", "delete"):
                    cached = index.dedupe.lookup(client_id, request_id)
                    if cached is not None:
                        summary.dedupe_hits += 1
                        if op == "insert":
                            oracle.acked_insert(payload)
                            last_acked_insert = (
                                request_id,
                                payload,
                                int(cached["tid"]),
                            )
                        else:
                            oracle.acked_delete(payload)
                        summary.acked += 1
                        break
            except OSError:
                # A surfaced I/O error is a *definite* failure: the WAL
                # rewound the partial record, nothing was applied.
                summary.io_failures += 1
            if op in ("checkpoint", "compact"):
                break  # unkeyed maintenance ops are not retried

    # Terminal forced crash + clean recovery, then the oracle verdict.
    _abandon(index)
    summary.crashes += 1
    injector.enabled = False
    final = LiveIndex.recover(path, injector=injector)
    summary.recoveries += 1
    summary.faults_injected = injector.injected

    # Exactly-once across crash + recovery: retransmitting an acked
    # keyed op must answer from the rebuilt dedupe table, returning the
    # original tid and touching nothing.
    if last_acked_insert is not None:
        rid, items, acked_tid = last_acked_insert
        size_before = len(final.logical_db())
        hits_before = final.dedupe.hits
        replay_tid = final.insert(items, client_id=client_id, request_id=rid)
        summary.dedupe_hits += final.dedupe.hits - hits_before
        if replay_tid != acked_tid or len(final.logical_db()) != size_before:
            summary.mismatch = (
                f"retransmit of acked insert (request_id={rid}) was not "
                f"deduplicated: tid {replay_tid} vs acked {acked_tid}"
            )
            summary.verified = False
            final.close()
            return summary

    summary.mismatch = oracle.diff(final.logical_db())
    summary.verified = summary.mismatch is None
    final.close()
    return summary
