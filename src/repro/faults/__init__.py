"""Deterministic, seeded fault injection for the durable serving stack.

The package has three layers:

* :mod:`repro.faults.plan` — the *what* and *when*: a
  :class:`~repro.faults.plan.FaultPlan` is a serialisable list of
  :class:`~repro.faults.plan.FaultSpec` rules (site + kind + trigger),
  and a :class:`~repro.faults.plan.FaultInjector` evaluates them
  deterministically at runtime (op-count triggers, seeded-probability
  triggers, bounded fire counts).
* :mod:`repro.faults.errfs` — an errfs-style failing-file shim for the
  write-ahead log and checkpoint I/O: fsync ``EIO``, ``ENOSPC``, short
  and torn writes, and crash-after-N-bytes
  (:class:`~repro.faults.plan.SimulatedCrash`).
* :mod:`repro.faults.proxy` — an in-process TCP fault proxy between
  :class:`~repro.service.client.ServiceClient` and
  :class:`~repro.service.server.QueryServer`: connection resets,
  response truncation and injected latency.

:mod:`repro.faults.chaos` drives randomized client workloads through
those shims and checks the *acknowledged-op oracle*: the terminal
(recovered/served) state must be byte-identical to replaying exactly
the acknowledged mutations — zero lost, zero duplicated.

Everything is opt-in: with no injector attached the hot paths pay one
``is None`` check (see ``benchmarks/bench_fault_overhead.py``).
"""

from repro.faults.chaos import AckedOracle, ChaosSummary, run_errfs_schedule
from repro.faults.errfs import FailingWalFile, checkpoint_fault
from repro.faults.plan import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
)
from repro.faults.proxy import FaultProxy

__all__ = [
    "AckedOracle",
    "ChaosSummary",
    "FAULT_KINDS",
    "FailingWalFile",
    "FaultInjector",
    "FaultPlan",
    "FaultProxy",
    "FaultSpec",
    "SimulatedCrash",
    "checkpoint_fault",
    "run_errfs_schedule",
]
