"""Fault plans and the deterministic injector that evaluates them.

A *site* is a named instrumentation point in the stack (e.g.
``wal.write``, ``wal.fsync``, ``checkpoint.write``, ``proxy.s2c``); a
*kind* is what goes wrong there (``eio``, ``enospc``, ``short_write``,
``torn_write``, ``crash``, ``reset``, ``truncate``, ``delay``).  A
:class:`FaultSpec` binds the two with a trigger:

* ``after=N`` — fire on the N-th operation at that site (1-based, the
  op-count trigger);
* ``probability=p`` — fire each op with probability ``p``, drawn from
  the plan's seeded RNG (deterministic given the seed and the op
  sequence);
* ``times`` — how many times the spec may fire in total (default 1,
  the one-shot; ``None`` means unlimited).

:class:`FaultPlan` is a JSON-serialisable bag of specs plus the seed —
the unit the CLI loads via ``--fault-plan`` and the chaos suite sweeps
by seed.  :class:`FaultInjector` is the runtime: shims call
:meth:`FaultInjector.check` with their site name and act on the
returned spec (or ``None``, the fast path).  All decision state (per-
site op counters, per-spec fire counts, one RNG) lives in the injector
and is guarded by one lock, so a plan evaluated twice with the same
seed against the same op sequence injects exactly the same faults.
"""

from __future__ import annotations

import json
import os
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Fault kinds understood by the shims.  File-backed sites use the
#: first five; the TCP proxy uses the last three.
FAULT_KINDS = (
    "eio",          # OSError(EIO) before the operation touches anything
    "enospc",       # OSError(ENOSPC) before the operation touches anything
    "short_write",  # write accepts only ``nbytes`` bytes (no error)
    "torn_write",   # write persists ``nbytes`` bytes, then raises EIO
    "crash",        # write persists ``nbytes`` bytes, then SimulatedCrash
    "reset",        # proxy: drop the connection abruptly
    "truncate",     # proxy: forward a prefix of the chunk, then drop
    "delay",        # proxy: sleep ``delay_ms`` before forwarding
)


class SimulatedCrash(Exception):
    """The injected process death: no cleanup handlers may run.

    Deliberately *not* an :class:`OSError` — error-handling paths that
    tidy up after I/O failures (tail rewind, retries) must not see it,
    exactly as they would not run across a real ``SIGKILL``.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where, what, and when.

    Exactly one trigger must be set: ``after`` (op-count) or
    ``probability``.  ``times=1`` is the one-shot default; ``None``
    lifts the cap.  ``nbytes`` parameterises the partial-write kinds
    (how many bytes land before the fault) and ``delay_ms`` the proxy
    latency kind.
    """

    site: str
    kind: str
    after: Optional[int] = None
    probability: Optional[float] = None
    times: Optional[int] = 1
    nbytes: int = 1
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {known}")
        if not self.site:
            raise ValueError("fault site must be a non-empty string")
        if (self.after is None) == (self.probability is None):
            raise ValueError(
                "exactly one of 'after' (op-count) or 'probability' must be set"
            )
        if self.after is not None and self.after < 1:
            raise ValueError("'after' is 1-based: the first op is after=1")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        if self.nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        out: Dict[str, object] = {"site": self.site, "kind": self.kind}
        if self.after is not None:
            out["after"] = self.after
        if self.probability is not None:
            out["probability"] = self.probability
        if self.times != 1:
            out["times"] = self.times
        if self.nbytes != 1:
            out["nbytes"] = self.nbytes
        if self.delay_ms:
            out["delay_ms"] = self.delay_ms
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        known = {"site", "kind", "after", "probability", "times", "nbytes", "delay_ms"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault spec fields: {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable collection of fault rules."""

    specs: Sequence[FaultSpec] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": int(self.seed),
            "faults": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise ValueError(f"unknown fault plan fields: {sorted(unknown)}")
        raw = data.get("faults", [])
        if not isinstance(raw, list):
            raise ValueError("'faults' must be a list of fault specs")
        return cls(
            specs=tuple(FaultSpec.from_dict(entry) for entry in raw),
            seed=int(data.get("seed", 0)),
        )

    def save(self, path) -> None:
        """Write the plan as JSON."""
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan written by :meth:`save` (or by hand)."""
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


class FaultInjector:
    """Evaluates a :class:`FaultPlan` deterministically at runtime.

    Thread-safe.  ``check(site)`` counts one operation at the site and
    returns the first spec whose trigger fires (or ``None``).  With a
    ``metrics_registry`` the injector exports
    ``repro_fault_checks_total`` and ``repro_fault_injected_total``
    (labelled by site and kind) so chaos runs show up on the same
    scrape as the service they are torturing.
    """

    def __init__(self, plan: Optional[FaultPlan] = None, metrics_registry=None):
        self.plan = plan if plan is not None else FaultPlan()
        self.enabled = True
        self._rng = random.Random(self.plan.seed)
        self._lock = threading.Lock()
        self._op_counts: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}
        #: Total faults injected (all sites), for quick assertions.
        self.injected = 0
        self._checks_metric = None
        self._injected_metric = None
        if metrics_registry is not None:
            self._checks_metric = metrics_registry.counter(
                "repro_fault_checks_total",
                "Fault-injection site evaluations",
                labelnames=("site",),
            )
            self._injected_metric = metrics_registry.counter(
                "repro_fault_injected_total",
                "Faults injected, by site and kind",
                labelnames=("site", "kind"),
            )

    def op_count(self, site: str) -> int:
        """Operations seen so far at a site."""
        with self._lock:
            return self._op_counts.get(site, 0)

    def check(self, site: str) -> Optional[FaultSpec]:
        """Count one op at ``site``; return the spec to inject, if any.

        At most one spec fires per op (the first matching one, in plan
        order), so plans compose predictably.
        """
        if not self.enabled:
            return None
        with self._lock:
            count = self._op_counts.get(site, 0) + 1
            self._op_counts[site] = count
            if self._checks_metric is not None:
                self._checks_metric.labels(site=site).inc()
            for index, spec in enumerate(self.plan.specs):
                if spec.site != site:
                    continue
                fired = self._fired.get(index, 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                if spec.after is not None:
                    hit = count == spec.after
                else:
                    hit = self._rng.random() < spec.probability
                if hit:
                    self._fired[index] = fired + 1
                    self.injected += 1
                    if self._injected_metric is not None:
                        self._injected_metric.labels(
                            site=site, kind=spec.kind
                        ).inc()
                    return spec
        return None

    def fired_counts(self) -> List[int]:
        """Per-spec fire counts, in plan order (introspection for tests)."""
        with self._lock:
            return [
                self._fired.get(index, 0) for index in range(len(self.plan.specs))
            ]
