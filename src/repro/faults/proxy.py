"""In-process TCP fault proxy between :class:`ServiceClient` and the server.

:class:`FaultProxy` listens on its own port and forwards byte streams to
an upstream ``(host, port)`` — normally a
:class:`~repro.service.server.QueryServer` — while consulting a
:class:`~repro.faults.plan.FaultInjector` on every forwarded chunk:

* site ``proxy.c2s`` — client-to-server chunks (requests);
* site ``proxy.s2c`` — server-to-client chunks (responses).

Kinds: ``reset`` (drop both sides of the connection abruptly — the
client sees a mid-request connection error and cannot know whether the
mutation was applied, the exact window idempotency keys exist for),
``truncate`` (forward only ``nbytes`` bytes of the chunk, then drop the
connection — a half-written response line), and ``delay`` (sleep
``delay_ms`` before forwarding — latency injection for deadline-budget
tests).

The proxy is thread-based (one accept thread, two pump threads per
connection) so it composes with both the asyncio server and the blocking
client without touching either event loop.  Ops are counted per site
across all connections, so an ``after=N`` trigger means "the N-th chunk
in that direction through this proxy", deterministic for the
one-request-at-a-time clients the chaos suite drives.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional, Tuple

from repro.faults.plan import FaultInjector

_CHUNK = 65536


class FaultProxy:
    """A fault-injecting TCP forwarder; use as a context manager.

    Parameters
    ----------
    upstream:
        ``(host, port)`` of the real server.
    injector:
        The shared :class:`~repro.faults.plan.FaultInjector` (sites
        ``proxy.c2s`` / ``proxy.s2c``).  ``None`` forwards faithfully.
    host, port:
        Listen address; ``port=0`` picks a free port (see
        :attr:`address`).
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        injector: Optional[FaultInjector] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = (upstream[0], int(upstream[1]))
        self.injector = injector
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, int(port)))
        self._listener.listen(32)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._closing = False
        self._partitioned = False
        self._lock = threading.Lock()
        self._conns: List[Tuple[socket.socket, socket.socket]] = []
        #: Connections dropped by an injected reset/truncate.
        self.connections_killed = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-fault-proxy", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            if self._partitioned:
                # Network partition: refuse the link outright, like a
                # down network path — the peer sees a connection reset.
                self._kill(client)
                continue
            try:
                server = socket.create_connection(self.upstream, timeout=10.0)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._conns.append((client, server))
            for source, sink, site in (
                (client, server, "proxy.c2s"),
                (server, client, "proxy.s2c"),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(source, sink, site),
                    name=f"repro-fault-proxy-{site}",
                    daemon=True,
                ).start()

    @staticmethod
    def _kill(*socks: socket.socket) -> None:
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _pump(self, source: socket.socket, sink: socket.socket, site: str) -> None:
        while True:
            try:
                chunk = source.recv(_CHUNK)
            except OSError:
                break
            if not chunk:
                break
            if self._partitioned:
                self.connections_killed += 1
                self._kill(source, sink)
                return
            spec = self.injector.check(site) if self.injector else None
            if spec is not None:
                if spec.kind == "delay":
                    time.sleep(spec.delay_ms / 1000.0)
                elif spec.kind == "reset":
                    self.connections_killed += 1
                    self._kill(source, sink)
                    return
                elif spec.kind == "truncate":
                    try:
                        sink.sendall(chunk[: spec.nbytes])
                    except OSError:
                        pass
                    self.connections_killed += 1
                    self._kill(source, sink)
                    return
                # Unknown-for-this-site kinds forward faithfully rather
                # than crashing the pump.
            try:
                sink.sendall(chunk)
            except OSError:
                break
        # EOF or error: propagate the half-close so line readers finish.
        try:
            sink.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def partition(self) -> None:
        """Sever the network path through this proxy.

        Existing connections are dropped and new ones are refused until
        :meth:`heal` — the cluster suite uses this to cut a node off
        (health probes fail, failover promotes the replica) without
        touching the node process itself.
        """
        self._partitioned = True
        with self._lock:
            conns, self._conns = self._conns, []
        for client, server in conns:
            self.connections_killed += 1
            self._kill(client, server)

    def heal(self) -> None:
        """Restore the network path after :meth:`partition`."""
        self._partitioned = False

    @property
    def partitioned(self) -> bool:
        """True while the path is severed."""
        return self._partitioned

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting and drop every forwarded connection."""
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns, self._conns = self._conns, []
        for client, server in conns:
            self._kill(client, server)

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
