"""errfs-style failing-file shims for the durable write path.

:class:`FailingWalFile` subclasses the write-ahead log's physical-I/O
seam (:class:`~repro.live.wal.WalFile`) and consults a
:class:`~repro.faults.plan.FaultInjector` before every primitive:

* site ``wal.write`` — kinds ``eio``/``enospc`` (raise before any byte
  lands), ``short_write`` (accept only ``nbytes`` bytes, no error — the
  log's short-write loop must finish the record), ``torn_write``
  (persist ``nbytes`` bytes *then* raise ``EIO`` — the classic torn
  record the rewind logic must clean up), ``crash`` (persist ``nbytes``
  bytes then raise :class:`~repro.faults.plan.SimulatedCrash`, which no
  cleanup path is allowed to catch);
* site ``wal.fsync`` — kinds ``eio``/``enospc``/``crash``;
* site ``wal.truncate`` — kinds ``eio``/``enospc`` (fail the rewind
  itself, forcing the log's dirty-tail refusal path).

:func:`checkpoint_fault` is the same idea for the checkpoint/compaction
file writes in :class:`~repro.live.index.LiveIndex`, which go through
numpy/JSON rather than a file object we can wrap: the index calls it at
each step boundary (sites ``checkpoint.write``, ``checkpoint.manifest``)
and the helper raises the mapped error when the plan says so.
"""

from __future__ import annotations

import errno
import os

from repro.faults.plan import FaultInjector, FaultSpec, SimulatedCrash
from repro.live.wal import WalFile

_ERRNO_BY_KIND = {
    "eio": errno.EIO,
    "enospc": errno.ENOSPC,
    # A torn write surfaces as EIO; the distinction is that its prefix
    # bytes already landed on disk.
    "torn_write": errno.EIO,
}


def _raise_for(spec: FaultSpec, what: str) -> None:
    """Raise the exception a fired spec maps to (never returns)."""
    if spec.kind == "crash":
        raise SimulatedCrash(f"injected crash during {what}")
    code = _ERRNO_BY_KIND.get(spec.kind)
    if code is None:
        raise ValueError(
            f"fault kind {spec.kind!r} cannot be raised at site {spec.site!r}"
        )
    raise OSError(code, f"injected {spec.kind.upper()} during {what}")


class FailingWalFile(WalFile):
    """A :class:`~repro.live.wal.WalFile` that fails on command."""

    def __init__(self, path, injector: FaultInjector) -> None:
        super().__init__(path)
        self.injector = injector

    def _write_exact(self, data) -> int:
        """Persist every byte of ``data`` (partial-fault bookkeeping)."""
        view = memoryview(data)
        written = 0
        while written < len(view):
            written += os.write(self._fd, view[written:])
        return written

    def write(self, data) -> int:
        spec = self.injector.check("wal.write")
        if spec is None:
            return super().write(data)
        if spec.kind == "short_write":
            # Accept a prefix without erroring: the caller's loop must
            # notice and finish the record with further writes.
            accepted = max(1, min(spec.nbytes, len(data)))
            return self._write_exact(data[:accepted])
        if spec.kind in ("torn_write", "crash"):
            # Persist a prefix, then fail: the torn record is now
            # physically on disk and must be rewound (or, for a crash,
            # found and truncated by recovery).
            self._write_exact(data[: min(spec.nbytes, len(data))])
            _raise_for(spec, "WAL write")
        _raise_for(spec, "WAL write")
        raise AssertionError("unreachable")

    def fsync(self) -> None:
        spec = self.injector.check("wal.fsync")
        if spec is not None:
            _raise_for(spec, "WAL fsync")
        super().fsync()

    def truncate(self, size: int) -> None:
        spec = self.injector.check("wal.truncate")
        if spec is not None:
            _raise_for(spec, "WAL truncate")
        super().truncate(size)


def checkpoint_fault(injector, site: str) -> None:
    """Fault gate for checkpoint/compaction I/O steps.

    No-op when ``injector`` is ``None`` (the production fast path) or
    when the plan has nothing for this op; otherwise raises the mapped
    ``OSError`` / :class:`~repro.faults.plan.SimulatedCrash`.
    """
    if injector is None:
        return
    spec = injector.check(site)
    if spec is not None:
        _raise_for(spec, site)
