"""Consistent-hash ring assigning insert placements to shard owners.

The router hashes each *newly inserted* transaction's global tid onto a
ring of virtual nodes (``vnodes`` per shard, positions drawn from
blake2b so they are stable across processes and Python hash
randomisation).  The ring decides **placement at insert time only** —
once a row lives on a shard the :class:`~repro.cluster.directory.\
TidDirectory` is authoritative, so later tid shifts (deletes) never
implicitly migrate data.

Rebalance reassigns a deterministic prefix of a shard's vnodes to
another shard (:meth:`HashRing.reassign`); the spans they cover then
hash to the new owner, and the router moves the rows currently mapped
into those spans (see :meth:`~repro.cluster.router.ClusterRouter.\
rebalance`).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["HashRing"]

_SPACE_BITS = 64


def _position(token: str) -> int:
    """Stable 64-bit ring position for a vnode token."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _key_position(key: int) -> int:
    """Stable 64-bit ring position for a placement key (a global tid)."""
    digest = hashlib.blake2b(
        str(int(key)).encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing over named shards with virtual nodes.

    Parameters
    ----------
    shards:
        Initial shard names (order does not affect the mapping — only
        the blake2b positions of each shard's vnode tokens do).
    vnodes:
        Virtual nodes per shard; more vnodes → smoother key spread and
        finer-grained rebalance steps.
    """

    def __init__(self, shards: Sequence[str], vnodes: int = 64) -> None:
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = int(vnodes)
        # position -> owning shard; positions collide with probability
        # ~ (n_vnodes)^2 / 2^64, negligible, but keep first-writer-wins
        # deterministic by inserting in sorted shard order.
        self._owners: Dict[int, str] = {}
        self._shards: List[str] = []
        for shard in sorted(set(map(str, shards))):
            self._add_shard(shard)
        if not self._shards:
            raise ValueError("ring needs at least one shard")
        self._rebuild()

    def _add_shard(self, shard: str) -> None:
        self._shards.append(shard)
        for v in range(self.vnodes):
            pos = _position(f"{shard}:{v}")
            self._owners.setdefault(pos, shard)

    def _rebuild(self) -> None:
        self._positions = sorted(self._owners)

    # ------------------------------------------------------------------
    @property
    def shards(self) -> Tuple[str, ...]:
        """All shard names ever added, sorted."""
        return tuple(sorted(self._shards))

    def owner_of(self, key: int) -> str:
        """The shard owning ``key`` (first vnode at/after its position)."""
        pos = _key_position(key)
        index = bisect.bisect_left(self._positions, pos)
        if index == len(self._positions):
            index = 0  # wrap around the ring
        return self._owners[self._positions[index]]

    def vnode_count(self, shard: str) -> int:
        """Vnodes currently owned by ``shard``."""
        return sum(1 for owner in self._owners.values() if owner == shard)

    def reassign(self, source: str, target: str, fraction: float) -> int:
        """Move ``fraction`` of ``source``'s vnodes to ``target``.

        The moved vnodes are the lowest-positioned ones — a
        deterministic choice, so every router computing the same
        reassignment converges on the same ring.  ``target`` may be a
        brand-new shard name.  Returns the number of vnodes moved.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        source, target = str(source), str(target)
        owned = sorted(
            pos for pos, owner in self._owners.items() if owner == source
        )
        if not owned:
            raise ValueError(f"shard {source!r} owns no vnodes")
        moved = max(1, int(round(fraction * len(owned))))
        if target not in self._shards:
            self._shards.append(target)
        for pos in owned[:moved]:
            self._owners[pos] = target
        self._rebuild()
        return moved

    def describe(self) -> Dict[str, object]:
        """Ring summary: vnode counts per shard plus the total."""
        return {
            "vnodes_total": len(self._positions),
            "shards": {
                shard: self.vnode_count(shard) for shard in self.shards
            },
        }
