"""In-process cluster assembly for tests, chaos drills and benchmarks.

:class:`ClusterHarness` stands up a whole cluster inside one Python
process: per-shard owner (and optional warm-replica) nodes as
:class:`~repro.cluster.node.ClusterNodeServer` background servers, an
optional :class:`~repro.faults.proxy.FaultProxy` in front of any owner
(so chaos schedules can cut a node off or corrupt its traffic), and a
:class:`~repro.cluster.router.RouterServer` fronting the lot.

Every node shares ONE :class:`~repro.core.signature.SignatureScheme`
(signature bounds must agree for per-shard pruning to be exact
cluster-wide); node states live in per-node directories under
``base_dir``.  Rows can be preloaded in global-tid order with an
explicit shard assignment — the directory is seeded to match — or the
cluster starts logically empty.

The subprocess path (``repro node`` / ``repro router``) reuses
:func:`bootstrap_node_state` for its on-disk layout, so the benchmark
can create node directories here and serve them from real processes.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.node import ClusterNodeServer
from repro.cluster.replication import ReplicatedLiveIndex
from repro.cluster.router import ClusterRouter, RouterServer, ShardSpec
from repro.data.transaction import TransactionDatabase
from repro.live.engine import LiveQueryEngine
from repro.live.index import LiveIndex
from repro.service.client import ServiceClient
from repro.service.server import serve_in_background

__all__ = ["ClusterHarness", "WalShipper", "bootstrap_node_state"]


def bootstrap_node_state(
    path: str,
    scheme,
    rows: Optional[Sequence[Sequence[int]]] = None,
    page_size: int = 64,
    **options,
) -> LiveIndex:
    """Create a node's on-disk live-index state and return it open.

    With ``rows`` the node starts holding them at local tids
    ``0..n-1``.  Without rows the node starts *logically empty*:
    :meth:`LiveIndex.create` needs a non-empty database to learn its
    base layout from, so a single placeholder row is created, deleted,
    and checkpointed away — recovery sees an empty logical database
    with a clean WAL.
    """
    if rows:
        db = TransactionDatabase(
            [list(map(int, r)) for r in rows],
            universe_size=scheme.universe_size,
        )
        return LiveIndex.create(
            path, db, scheme=scheme, page_size=page_size, **options
        )
    db = TransactionDatabase([[0]], universe_size=scheme.universe_size)
    index = LiveIndex.create(
        path, db, scheme=scheme, page_size=page_size, **options
    )
    index.delete(0)
    index.checkpoint()
    return index


class WalShipper:
    """Ships WAL tail bytes to a replica node, connecting lazily.

    Lazy because the replica may start up after its owner; on any ship
    failure the connection is dropped and rebuilt on the next attempt.
    """

    def __init__(self, shard: str, address: Tuple[str, int]) -> None:
        self.shard = shard
        self.address = address
        self._client: Optional[ServiceClient] = None

    def __call__(self, data: bytes) -> None:
        if self._client is None:
            host, port = self.address
            self._client = ServiceClient(
                host, int(port), socket_timeout=10.0, retries=2
            )
        try:
            self._client.replicate(self.shard, data)
        except Exception:
            # The connection state is unknown; reconnect on next ship.
            client, self._client = self._client, None
            if client is not None:
                client.close()
            raise

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None


class ClusterHarness:
    """A live multi-node cluster behind one router, in one process.

    Parameters
    ----------
    base_dir:
        Directory for per-node live-index states.
    scheme:
        The shared :class:`~repro.core.signature.SignatureScheme`.
    shards:
        Shard names (sorted order defines nothing — placement is by
        ring hash).
    replicas:
        Subset of ``shards`` that get a warm replica with synchronous
        WAL shipping.
    proxies:
        ``{shard: FaultInjector-or-None}`` — shards listed here get a
        :class:`~repro.faults.proxy.FaultProxy` between router and
        owner (``None`` forwards faithfully but still supports
        ``partition()``).
    rows, assignment:
        Optional preload: ``rows[g]`` is global tid ``g``'s
        transaction, ``assignment[g]`` the shard it lives on.  Replica
        states are cloned from their owner's rows.
    sketch:
        Forwarded to :meth:`LiveIndex.create
        <repro.live.index.LiveIndex.create>` on every node — ``True``
        (or a dict of build options) makes the whole cluster
        sketch-enabled so routed queries may use
        ``candidate_tier="lsh"``.
    """

    def __init__(
        self,
        base_dir: str,
        scheme,
        shards: Sequence[str] = ("s0", "s1"),
        replicas: Sequence[str] = (),
        proxies: Optional[Dict[str, object]] = None,
        rows: Optional[Sequence[Sequence[int]]] = None,
        assignment: Optional[Sequence[str]] = None,
        page_size: int = 64,
        node_options: Optional[Dict[str, object]] = None,
        router_options: Optional[Dict[str, object]] = None,
        router_server_options: Optional[Dict[str, object]] = None,
        client_retries: int = 3,
        vnodes: int = 64,
        probe_interval: Optional[float] = None,
        probe_failures: int = 2,
        sketch: object = None,
    ) -> None:
        from repro.faults.proxy import FaultProxy  # avoid cycle at import

        self.base_dir = base_dir
        self.scheme = scheme
        shard_names = [str(s) for s in shards]
        replica_names = {str(s) for s in replicas}
        unknown = replica_names - set(shard_names)
        if unknown:
            raise ValueError(f"replicas for unknown shards: {sorted(unknown)}")
        if (rows is None) != (assignment is None):
            raise ValueError("rows and assignment must be given together")
        if rows is not None and len(rows) != len(assignment):
            raise ValueError("rows and assignment lengths differ")

        per_shard_rows: Dict[str, List[List[int]]] = {s: [] for s in shard_names}
        preload_pairs: List[Tuple[str, int]] = []
        if rows is not None:
            for row, shard in zip(rows, assignment):
                shard = str(shard)
                preload_pairs.append((shard, len(per_shard_rows[shard])))
                per_shard_rows[shard].append([int(i) for i in row])

        self.indexes: Dict[str, object] = {}
        self.servers: Dict[str, object] = {}
        self.proxies: Dict[str, FaultProxy] = {}
        self._shippers: List[WalShipper] = []
        node_options = dict(node_options or {})

        specs: List[ShardSpec] = []
        for name in shard_names:
            shard_rows = per_shard_rows[name]
            replica_address = None
            if name in replica_names:
                replica_index = bootstrap_node_state(
                    os.path.join(base_dir, f"{name}-replica"),
                    scheme,
                    rows=shard_rows,
                    page_size=page_size,
                    sketch=sketch,
                )
                replica_server = serve_in_background(
                    LiveQueryEngine(replica_index),
                    server_cls=ClusterNodeServer,
                    live_index=replica_index,
                    shard=name,
                    role="replica",
                    **node_options,
                )
                self.indexes[f"{name}-replica"] = replica_index
                self.servers[f"{name}-replica"] = replica_server
                replica_address = replica_server.address

            owner_index = bootstrap_node_state(
                os.path.join(base_dir, f"{name}-owner"),
                scheme,
                rows=shard_rows,
                page_size=page_size,
                sketch=sketch,
            )
            live = owner_index
            if replica_address is not None:
                shipper = WalShipper(name, replica_address)
                self._shippers.append(shipper)
                live = ReplicatedLiveIndex(owner_index, shipper)
            owner_server = serve_in_background(
                LiveQueryEngine(owner_index),
                server_cls=ClusterNodeServer,
                live_index=live,
                shard=name,
                role="owner",
                **node_options,
            )
            self.indexes[name] = owner_index
            self.servers[name] = owner_server

            routed_address = owner_server.address
            if proxies is not None and name in proxies:
                proxy = FaultProxy(owner_server.address, injector=proxies[name])
                self.proxies[name] = proxy
                routed_address = proxy.address
            specs.append(
                ShardSpec(name, routed_address, replica_address=replica_address)
            )

        self.router = ClusterRouter(
            specs,
            universe_size=scheme.universe_size,
            vnodes=vnodes,
            client_retries=client_retries,
            **(router_options or {}),
        )
        if rows is not None:
            self.router.directory.preload(preload_pairs)
        if probe_interval is not None:
            self.router.start_probes(
                interval=probe_interval, failure_threshold=probe_failures
            )
        self.router_server = serve_in_background(
            self.router,
            server_cls=RouterServer,
            **(router_server_options or {}),
        )
        self.router_address = self.router_server.address

    # ------------------------------------------------------------------
    def client(self, **options) -> ServiceClient:
        """A fresh :class:`ServiceClient` connected to the router."""
        host, port = self.router_address
        return ServiceClient(host, port, **options)

    def kill_owner(self, shard: str) -> None:
        """Hard-stop a shard owner's server (failover drill)."""
        self.servers[str(shard)].stop(timeout=10.0)

    def close(self) -> None:
        self.router_server.stop(timeout=10.0)
        self.router.close()
        for proxy in self.proxies.values():
            proxy.close()
        for server in self.servers.values():
            server.stop(timeout=10.0)
        for shipper in self._shippers:
            shipper.close()
        for index in self.indexes.values():
            index.close()

    def __enter__(self) -> "ClusterHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
