"""Global-tid directory: the router's authoritative row placement map.

The cluster presents one logical tid space with exactly the semantics
of a single :class:`~repro.live.index.LiveIndex`: an insert appends at
``len(directory)`` and a delete shifts every later global tid down by
one.  Each global tid maps to a ``(shard, local_tid)`` pair, where
``local_tid`` is the shard node's own logical tid for the row — shard
nodes are plain live indexes, so a node-local delete shifts the node's
later locals down by one, and the directory mirrors that shift.

Beyond the mapped rows the directory tracks each shard's *physical*
row count, which can briefly exceed its mapped count:

* during an online move, the copy inserted at the target is physical
  but unmapped until the flip (:meth:`begin_copy` → :meth:`commit_move`
  → :meth:`end_move`);
* a shard insert whose ack was lost leaves a *ghost* row — applied on
  the node, never mapped.  :meth:`record_physical` heals the count from
  the node-returned tid, and a later keyed retry maps the ghost in
  place via ``assign(shard, local=ghost_tid)``.

Unmapped physical rows are invisible to queries (the reverse map marks
their slots ``-1`` and the router drops them from shard results); the
:attr:`unmapped` total is the router's per-shard ``k`` head-room so an
unmapped row can never displace a mapped one from a shard top-k.

Thread safety: the router guards every call with its topology lock;
the directory itself is deliberately lock-free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["TidDirectory"]


class TidDirectory:
    """Mapping of global logical tids to ``(shard, local_tid)`` pairs."""

    def __init__(self, shards) -> None:
        # entries[g] = [shard, local]; index in this list IS the global tid.
        self._entries: List[List[object]] = []
        self._physical: Dict[str, int] = {str(s): 0 for s in shards}
        self._version = 0
        self._snapshot_version = -1
        self._snapshot: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of mapped (logical) rows across the cluster."""
        return len(self._entries)

    @property
    def shards(self) -> Tuple[str, ...]:
        return tuple(sorted(self._physical))

    def add_shard(self, shard: str) -> None:
        """Register a (possibly new) shard with zero rows."""
        self._physical.setdefault(str(shard), 0)
        self._version += 1

    def physical_count(self, shard: str) -> int:
        """Physical rows on ``shard`` (mapped + in-flight + ghosts)."""
        return self._physical[str(shard)]

    def mapped_count(self, shard: str) -> int:
        """Rows on ``shard`` that are reachable through a global tid."""
        return sum(1 for entry in self._entries if entry[0] == shard)

    @property
    def unmapped(self) -> int:
        """Physical rows not mapped by any global tid (cluster-wide).

        The router widens every per-shard ``k`` by this much, so a
        shard's top-k *after dropping unmapped rows* still covers its
        true mapped top-k.
        """
        return sum(self._physical.values()) - len(self._entries)

    def lookup(self, global_tid: int) -> Tuple[str, int]:
        """The ``(shard, local_tid)`` behind a global tid."""
        if not 0 <= global_tid < len(self._entries):
            raise ValueError(
                f"tid {global_tid} out of range [0, {len(self._entries)})"
            )
        shard, local = self._entries[global_tid]
        return shard, local

    # ------------------------------------------------------------------
    # Mutations (router-lock-guarded)
    # ------------------------------------------------------------------
    def assign(self, shard: str, local: int) -> int:
        """Map a new global tid to the node-returned ``local`` tid.

        Appends at ``len(self)`` — exactly a live index's insert
        semantics.  ``local`` comes back from the shard node, so a
        dedupe replay on the node (returning an old tid for a retried
        key) maps the original physical row instead of predicting a
        fresh slot.  The physical count is healed to cover ``local``
        (it can lag when a previous ack was lost after the node
        applied).
        """
        shard = str(shard)
        local = int(local)
        global_tid = len(self._entries)
        self._entries.append([shard, local])
        self._physical[shard] = max(self._physical[shard], local + 1)
        self._version += 1
        return global_tid

    def record_physical(self, shard: str, local: int) -> None:
        """Heal the physical count after a node applied an unmapped row."""
        shard = str(shard)
        self._physical[shard] = max(self._physical[shard], int(local) + 1)
        self._version += 1

    def remove(self, global_tid: int) -> Tuple[str, int]:
        """Unmap a global tid after its shard row was deleted.

        Later global tids shift down by one (list removal) and the
        shard's later locals shift down by one (the node's live index
        did the same when it applied the delete).  Returns the
        pre-removal ``(shard, local)``.
        """
        shard, local = self.lookup(global_tid)
        del self._entries[global_tid]
        for entry in self._entries:
            if entry[0] == shard and entry[1] > local:
                entry[1] -= 1
        self._physical[shard] -= 1
        self._version += 1
        return shard, local

    # ------------------------------------------------------------------
    # Two-phase online move (rebalance)
    # ------------------------------------------------------------------
    def begin_copy(self, target: str) -> int:
        """Reserve the next physical slot on ``target`` for a move copy.

        The slot is counted (queries widen ``k``) but unmapped (its
        results are dropped) until :meth:`commit_move` flips the row.
        Returns the local tid the target node's insert must come back
        with — the router asserts it does.
        """
        target = str(target)
        local = self._physical[target]
        self._physical[target] += 1
        self._version += 1
        return local

    def cancel_copy(self, shard: str) -> None:
        """Release a :meth:`begin_copy` reservation that never landed.

        Used when the node-side insert failed outright, or answered a
        dedupe replay (the row already exists, so the reserved fresh
        slot will never hold data).
        """
        self._physical[str(shard)] -= 1
        self._version += 1

    def commit_move(self, global_tid: int, target: str, target_local: int
                    ) -> Tuple[str, int]:
        """Atomically remap a global tid onto its copied target row.

        From this version on, queries resolve the row through the
        target copy; the stale source copy is unmapped (dropped from
        results) until :meth:`end_move` physically deletes it.  Returns
        the old ``(shard, local)`` for that delete.
        """
        entry = self._entries[global_tid]
        old = (entry[0], entry[1])
        entry[0] = str(target)
        entry[1] = int(target_local)
        self._version += 1
        return old

    def end_move(self, source: str, source_local: int) -> None:
        """Drop the source copy's physical slot after its node delete.

        The node's delete shifted its later locals down by one; mirror
        that for every mapped row still on ``source``.
        """
        source = str(source)
        source_local = int(source_local)
        for entry in self._entries:
            if entry[0] == source and entry[1] > source_local:
                entry[1] -= 1
        self._physical[source] -= 1
        self._version += 1

    # ------------------------------------------------------------------
    def preload(self, assignment) -> None:
        """Bulk-load a fresh directory from ``[(shard, local), ...]``.

        Position ``g`` of the assignment becomes global tid ``g``; the
        physical counts are derived.  Used when shard node states were
        built out-of-band (the benchmark pre-partitions the dataset).
        """
        if self._entries:
            raise ValueError("preload requires an empty directory")
        for shard, local in assignment:
            shard = str(shard)
            if shard not in self._physical:
                raise ValueError(f"unknown shard {shard!r}")
            self._entries.append([shard, int(local)])
            self._physical[shard] = max(self._physical[shard], int(local) + 1)
        self._version += 1

    def reverse_maps(self) -> Dict[str, np.ndarray]:
        """Per-shard arrays mapping local tid -> global tid (-1 unmapped).

        Cached by mutation version: query-heavy phases rebuild once and
        share the arrays (they are immutable by convention — each
        mutation bumps the version instead of touching a snapshot).
        """
        if self._snapshot_version != self._version:
            snapshot = {
                shard: np.full(count, -1, dtype=np.int64)
                for shard, count in self._physical.items()
            }
            for global_tid, (shard, local) in enumerate(self._entries):
                snapshot[shard][local] = global_tid
            self._snapshot = snapshot
            self._snapshot_version = self._version
        return self._snapshot

    def per_shard_counts(self) -> Dict[str, Dict[str, int]]:
        """``{shard: {"mapped": n, "physical": m}}`` for introspection."""
        mapped: Dict[str, int] = {shard: 0 for shard in self._physical}
        for shard, _ in self._entries:
            mapped[shard] += 1
        return {
            shard: {"mapped": mapped[shard], "physical": count}
            for shard, count in sorted(self._physical.items())
        }
