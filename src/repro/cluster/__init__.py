"""Multi-node cluster: hash routing, replication, scatter-gather, rebalance.

The cluster layer turns the single-process service into a set of
shard-owner node processes behind one router:

* :mod:`repro.cluster.ring` — consistent-hash placement of inserts;
* :mod:`repro.cluster.directory` — the global-tid → (shard, local)
  directory that gives the cluster exact live-index tid semantics;
* :mod:`repro.cluster.replication` — synchronous WAL shipping to warm
  replicas (acked ⇒ durable on owner *and* replica);
* :mod:`repro.cluster.node` — the shard node server (replicate /
  promote / role / rows ops on top of the stock query server);
* :mod:`repro.cluster.router` — scatter-gather query fan-out with
  byte-identical merge, idempotent mutation routing, health-probe
  failover and online rebalance;
* :mod:`repro.cluster.harness` — one-process cluster assembly for
  tests, chaos drills and benchmarks.

See ``docs/cluster.md`` for the design and its invariants.
"""

from repro.cluster.directory import TidDirectory
from repro.cluster.harness import ClusterHarness, WalShipper, bootstrap_node_state
from repro.cluster.node import ClusterNodeServer
from repro.cluster.replication import ReplicaApplier, ReplicatedLiveIndex
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter, RouterServer, ShardSpec

__all__ = [
    "ClusterHarness",
    "ClusterNodeServer",
    "ClusterRouter",
    "HashRing",
    "ReplicaApplier",
    "ReplicatedLiveIndex",
    "RouterServer",
    "ShardSpec",
    "TidDirectory",
    "WalShipper",
    "bootstrap_node_state",
]
