"""Shard-node server: a :class:`QueryServer` that speaks the cluster ops.

A :class:`ClusterNodeServer` fronts one shard's live index.  Owners
serve queries and mutations exactly like a single-node server (their
``live_index`` is usually a
:class:`~repro.cluster.replication.ReplicatedLiveIndex`, so acks imply
replica durability).  Replicas serve queries but answer every client
mutation ``unavailable`` until promoted — their state advances only
through ``replicate`` batches from the owner.

``promote`` flips a replica to owner during failover.  From that
moment it accepts mutations — and *refuses* further ``replicate``
batches, which fences a stale owner: the old owner's synchronous ship
fails, so it can never ack a mutation the promoted node won't have.

The node additionally serves ``role`` (introspection) and ``rows``
(raw transaction fetch by local tid, the router's rebalance primitive).
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import functools
from typing import Optional, Tuple

from repro.cluster.replication import ReplicaApplier
from repro.service import frames
from repro.service.server import QueryServer

__all__ = ["ClusterNodeServer"]


class ClusterNodeServer(QueryServer):
    """One shard's node process (owner or warm replica).

    Accepts every :class:`QueryServer` option plus:

    shard:
        The shard name this node carries (stamped on metrics and acks).
    role:
        ``"owner"`` (default) or ``"replica"``.
    """

    REQUEST_FRAME_TYPES: Tuple[int, ...] = QueryServer.REQUEST_FRAME_TYPES + (
        frames.FRAME_REPLICATE,
    )

    def __init__(self, engine, shard: str = "shard", role: str = "owner",
                 **options) -> None:
        if role not in ("owner", "replica"):
            raise ValueError(f"role must be 'owner' or 'replica', got {role!r}")
        super().__init__(engine, **options)
        self.shard = str(shard)
        self.role = role
        self.applier: Optional[ReplicaApplier] = (
            ReplicaApplier(self.live_index) if role == "replica" else None
        )
        registry = self.metrics.registry
        node = f"{self.shard}/{role}"
        self._replicated_counter = registry.counter(
            "repro_cluster_replicated_records_total",
            "WAL records applied from replication batches",
            labelnames=("node", "shard"),
        ).labels(node=node, shard=self.shard)
        self._promotions_counter = registry.counter(
            "repro_cluster_promotions_total",
            "Replica-to-owner promotions served",
            labelnames=("node", "shard"),
        ).labels(node=node, shard=self.shard)
        registry.gauge(
            "repro_cluster_node_role",
            "1 while this node is the shard owner, else 0",
            labelnames=("node", "shard"),
        ).labels(node=node, shard=self.shard).set_function(
            lambda: 1.0 if self.role == "owner" else 0.0
        )

    # ------------------------------------------------------------------
    async def _dispatch(self, message, writer, write_lock, conn) -> None:
        op = message["op"]
        if self.role == "replica" and op in ("insert", "delete", "compact",
                                             "checkpoint"):
            # Warm replicas advance only through replication; a direct
            # mutation would fork them from the owner.  ``unavailable``
            # is deliberate — it is retryable, so a client that keeps
            # retrying through a failover succeeds once promotion lands.
            self.metrics.record_rejection("unavailable")
            await self._send(
                writer,
                write_lock,
                conn.encode_error(
                    message.get("id"),
                    "unavailable",
                    f"node {self.shard!r} is a replica; mutations go to "
                    "the shard owner",
                ),
            )
            return
        await super()._dispatch(message, writer, write_lock, conn)

    async def _dispatch_cluster(self, message, writer, write_lock, conn) -> bool:
        op = message["op"]
        request_id = message.get("id")
        if op == "replicate":
            await self._serve_replicate(message, writer, write_lock, conn)
            return True
        if op == "promote":
            if self.role == "replica":
                self.role = "owner"
                self._promotions_counter.inc()
                self._log.info("cluster.promoted", shard=self.shard)
            payload = {"role": self.role, "shard": self.shard}
            if self.applier is not None:
                payload["source_seqno"] = int(self.applier.source_seqno or 0)
            await self._send(
                writer, write_lock, conn.encode_ok(request_id, payload)
            )
            return True
        if op == "role":
            payload = {
                "role": self.role,
                "shard": self.shard,
                "applied_seqno": int(self.live_index.applied_seqno),
                "num_transactions": int(self.live_index.num_transactions),
            }
            if self.applier is not None:
                payload["source_seqno"] = int(self.applier.source_seqno or 0)
            await self._send(
                writer, write_lock, conn.encode_ok(request_id, payload)
            )
            return True
        if op == "rows":
            await self._serve_rows(message, writer, write_lock, conn)
            return True
        return False  # ring/rebalance are router ops

    # ------------------------------------------------------------------
    async def _serve_replicate(self, message, writer, write_lock, conn) -> None:
        request_id = message.get("id")
        if self.role != "replica":
            # Fencing: once promoted (or if misaddressed), refuse the
            # batch so the shipping owner cannot ack past us.
            self.metrics.record_rejection("bad_request")
            await self._send(
                writer,
                write_lock,
                conn.encode_error(
                    request_id,
                    "bad_request",
                    f"node {self.shard!r} is {self.role}; replicate "
                    "batches are only applied by replicas",
                ),
            )
            return
        data = message.get("wal")
        if not isinstance(data, (bytes, bytearray)):
            encoded = message.get("wal_b64")
            try:
                data = base64.b64decode(encoded, validate=True)
            except (TypeError, ValueError, binascii.Error):
                self.metrics.record_rejection("bad_request")
                await self._send(
                    writer,
                    write_lock,
                    conn.encode_error(
                        request_id,
                        "bad_request",
                        "replicate needs wal bytes (or wal_b64)",
                    ),
                )
                return
        loop = asyncio.get_running_loop()
        try:
            applied, seqno = await loop.run_in_executor(
                None, functools.partial(self.applier.apply, bytes(data))
            )
        except OSError as exc:
            # The replica's own WAL write failed: never ack, the owner
            # must treat the batch as unshipped.
            self.metrics.record_rejection("unavailable")
            self._log.error("cluster.replicate_unavailable", error=str(exc))
            await self._send(
                writer,
                write_lock,
                conn.encode_error(request_id, "unavailable", str(exc)),
            )
            return
        except ValueError as exc:  # CRC mismatch, replication gap, ...
            self.metrics.record_rejection("bad_request")
            self._log.error("cluster.replicate_rejected", error=str(exc))
            await self._send(
                writer,
                write_lock,
                conn.encode_error(request_id, "bad_request", str(exc)),
            )
            return
        if applied:
            self._replicated_counter.inc(applied)
        await self._send(
            writer,
            write_lock,
            conn.encode_ok(
                request_id,
                {"applied": int(applied), "source_seqno": int(seqno)},
            ),
        )

    async def _serve_rows(self, message, writer, write_lock, conn) -> None:
        request_id = message.get("id")
        tids = message.get("tids")
        if not isinstance(tids, list) or not all(
            isinstance(t, int) and not isinstance(t, bool) for t in tids
        ):
            self.metrics.record_rejection("bad_request")
            await self._send(
                writer,
                write_lock,
                conn.encode_error(
                    request_id, "bad_request", "tids must be a list of ints"
                ),
            )
            return
        loop = asyncio.get_running_loop()

        def fetch():
            db = self.live_index.logical_db()
            return [[int(i) for i in db.items_of(int(t))] for t in tids]

        try:
            rows = await loop.run_in_executor(None, fetch)
        except (IndexError, ValueError) as exc:
            self.metrics.record_rejection("bad_request")
            await self._send(
                writer,
                write_lock,
                conn.encode_error(request_id, "bad_request", str(exc)),
            )
            return
        await self._send(
            writer, write_lock, conn.encode_ok(request_id, {"rows": rows})
        )
