"""Synchronous WAL shipping from a shard owner to its warm replica.

:class:`ReplicatedLiveIndex` wraps the owner's
:class:`~repro.live.index.LiveIndex`.  Every mutation appends to the
owner WAL as usual, then ships the newly appended CRC-framed record
bytes (read back via :meth:`~repro.live.wal.WriteAheadLog.read_tail`)
to the replica and waits for the ack **before** the mutation is
acknowledged.  An acked mutation is therefore durable on both nodes —
the zero-acked-loss invariant failover promotion relies on.

A failed ship raises :class:`OSError`, which the serving layer already
maps to degraded mode + ``unavailable`` (the same contract as a local
WAL write failure): the mutation is *not* acked, and no further
mutations are admitted until :meth:`ReplicatedLiveIndex.probe`
succeeds.  The probe re-ships the pending tail first, which heals the
one-record divergence a lost ack can leave (applied locally, never
acked), so the replica catches up before the owner accepts new writes.

:class:`ReplicaApplier` is the receiving half, owned by the replica
node: it applies shipped records through the replica index's *public*
``insert``/``delete`` with each record's idempotency key — so the
replica's dedupe table mirrors the owner's, and a router retry after
failover is answered exactly-once by the promoted replica.  Applies
are gated by the owner's WAL seqnos: duplicates (re-shipped after a
lost ack) are skipped, gaps are refused.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple

from repro.live.wal import OP_INSERT, OP_INSERT_KEYED, iter_records

__all__ = ["ReplicatedLiveIndex", "ReplicaApplier"]


class ReplicatedLiveIndex:
    """A live index whose acks imply durability on owner *and* replica.

    Parameters
    ----------
    index:
        The owner's open :class:`~repro.live.index.LiveIndex`.
    ship:
        ``ship(wal_bytes) -> None`` delivering raw WAL record bytes to
        the replica and raising on failure — normally a bound
        ``lambda data: client.replicate(shard, data)`` over a
        :class:`~repro.service.client.ServiceClient`.
    """

    def __init__(self, index, ship: Callable[[bytes], None]) -> None:
        self._index = index
        self._ship = ship
        self._lock = threading.RLock()
        self._offset = index.wal.tail_offset
        #: Lifetime count of WAL bytes shipped (metrics hook).
        self.bytes_shipped = 0
        self.ship_failures = 0

    # ------------------------------------------------------------------
    @property
    def index(self):
        """The wrapped owner index."""
        return self._index

    def _ship_tail(self) -> None:
        """Ship every WAL byte appended since the last successful ship."""
        try:
            data, new_offset = self._index.wal.read_tail(self._offset)
        except ValueError:
            # The WAL was reset (checkpoint/compact) underneath the
            # tracked offset; restart from the head.
            self._offset = 0
            data, new_offset = self._index.wal.read_tail(0)
        if data:
            try:
                self._ship(data)
            except OSError:
                self.ship_failures += 1
                raise
            except Exception as exc:
                self.ship_failures += 1
                raise OSError(f"replication ship failed: {exc}") from exc
            self.bytes_shipped += len(data)
        self._offset = new_offset

    # ------------------------------------------------------------------
    # Mutations: apply locally, then ship before acking.
    # ------------------------------------------------------------------
    def insert(self, items, client_id=None, request_id=None) -> int:
        with self._lock:
            tid = self._index.insert(
                items, client_id=client_id, request_id=request_id
            )
            self._ship_tail()
            return tid

    def delete(self, tid, client_id=None, request_id=None) -> None:
        with self._lock:
            self._index.delete(
                tid, client_id=client_id, request_id=request_id
            )
            self._ship_tail()

    def compact(self, repartition: bool = False):
        # Drain the tail first so the replica holds everything the WAL
        # is about to forget; the reset then restarts shipping at 0.
        with self._lock:
            self._ship_tail()
            report = self._index.compact(repartition)
            self._offset = self._index.wal.tail_offset
            return report

    def checkpoint(self) -> int:
        with self._lock:
            self._ship_tail()
            applied = self._index.checkpoint()
            self._offset = self._index.wal.tail_offset
            return applied

    def probe(self) -> bool:
        """Durability probe: local WAL writable *and* replica reachable.

        Re-ships any pending tail (healing divergence from a lost ack)
        before declaring the write path healthy again.
        """
        with self._lock:
            try:
                self._ship_tail()
            except OSError:
                return False
            return bool(self._index.probe())

    # Reads and introspection delegate to the wrapped index.
    def __getattr__(self, name):
        return getattr(self._index, name)


class ReplicaApplier:
    """Applies shipped WAL records to a replica's live index, in order.

    The first shipped record establishes the seqno baseline (owners may
    have bootstrap history); after that, records at or below the last
    applied seqno are skipped (duplicate ship after a lost ack) and any
    skip *forward* is refused — a gap means lost records, and applying
    past it would silently fork the replica.
    """

    def __init__(self, index) -> None:
        self.index = index
        self.source_seqno: Optional[int] = None
        self._lock = threading.Lock()
        self.records_applied = 0

    def apply(self, data: bytes) -> Tuple[int, int]:
        """Apply one shipped batch; returns ``(applied, last_seqno)``."""
        applied = 0
        with self._lock:
            for record, _ in iter_records(bytes(data)):
                last = self.source_seqno
                if last is not None:
                    if record.seqno <= last:
                        continue  # duplicate of an already-applied record
                    if record.seqno != last + 1:
                        raise ValueError(
                            f"replication gap: expected seqno {last + 1}, "
                            f"got {record.seqno}"
                        )
                if record.op in (OP_INSERT, OP_INSERT_KEYED):
                    self.index.insert(
                        record.items,
                        client_id=record.client_id,
                        request_id=record.request_id,
                    )
                else:
                    self.index.delete(
                        record.logical_tid,
                        client_id=record.client_id,
                        request_id=record.request_id,
                    )
                self.source_seqno = record.seqno
                applied += 1
                self.records_applied += 1
        return applied, int(self.source_seqno or 0)
