"""The cluster front-end: consistent-hash routing plus scatter-gather.

:class:`ClusterRouter` presents the *engine* surface (``run_batch``)
and the *live-index* surface (``insert`` / ``delete`` / ``compact`` /
``checkpoint`` / ``probe``) a :class:`~repro.service.server.QueryServer`
expects, so :class:`RouterServer` is a near-stock server whose "engine"
fans every coalesced batch out to the shard-owner nodes and whose
"index" routes every mutation to the owning shard.

Correctness contract (the differential suite pins this down): on a
quiescent cluster, kNN and range answers are **byte-identical** to a
single-node :class:`~repro.core.engine.ShardedQueryEngine` over the
same logical database —

* the global tid space has exact live-index semantics (appends at the
  end, deletes shift later tids down), maintained by the
  :class:`~repro.cluster.directory.TidDirectory`;
* every shard is asked for ``k`` plus the directory's unmapped-row
  head-room, unmapped rows are dropped, and the partials merge under
  the canonical ``(-similarity, tid)`` order
  (:func:`~repro.core.sharded.merge_neighbor_lists`);
* when a shard's truncated top-k *could* hide rows tied with the
  provisional k-th result, a second tie-complete pass re-asks every
  shard as a range query at that similarity — so boundary ties resolve
  by global tid exactly as the single-node merge does, even when a
  rebalance has left a shard's local tid order out of step with the
  global order.

Mutations carry the *client's* idempotency key end-to-end: the router
forwards ``(client_id, request_id)`` unchanged to the shard node, so a
retry that lands after a failover is answered from the promoted
replica's dedupe table — applied exactly once, cluster-wide.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import similarity_key
from repro.core.search import Neighbor, SearchStats
from repro.core.sharded import merge_neighbor_lists, merge_search_stats
from repro.cluster.directory import TidDirectory
from repro.cluster.ring import HashRing
from repro.data.transaction import TransactionDatabase
from repro.live.dedupe import DedupeTable
from repro.live.index import CompactionReport
from repro.obs.distributed import (
    TraceContext,
    graft_remote_trace,
    new_span_id,
    new_trace_id,
)
from repro.obs.log import JsonLogger, current_correlation_id
from repro.obs.registry import MetricRegistry
from repro.obs.trace import current_tracer
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    ERROR_CODES,
    ProtocolError,
    decode_neighbors,
    decode_search_stats,
)
from repro.service.server import QueryServer

__all__ = ["ClusterRouter", "RouterServer", "ShardSpec"]


class _RWLock:
    """Writer-preferring reader/writer lock for the routing topology.

    Queries hold the read side across their whole scatter so shard
    results always decode against the directory snapshot they were
    issued under; mutations take the write side only for the in-memory
    directory/ring updates (plus, during a move, the one node delete
    whose local-tid shift must be mirrored atomically).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


@dataclass
class ShardSpec:
    """Where one shard lives: its owner node and optional warm replica."""

    name: str
    address: Tuple[str, int]
    replica_address: Optional[Tuple[str, int]] = None


@dataclass
class _ShardHandle:
    name: str
    address: Tuple[str, int]
    client: ServiceClient
    replica_address: Optional[Tuple[str, int]] = None
    probe_failures: int = 0
    promoted: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)


def _translate(exc: Exception) -> ProtocolError:
    """Map a shard client failure onto the router's response code."""
    if isinstance(exc, ServiceError):
        code = exc.code if exc.code in ERROR_CODES else "internal"
        return ProtocolError(code, f"shard error: {exc.message}")
    return ProtocolError("unavailable", f"shard unreachable: {exc}")


class ClusterRouter:
    """Routes one logical index across shard-owner node processes.

    Parameters
    ----------
    shards:
        :class:`ShardSpec` per shard (or ``{name: (host, port)}``).
    universe_size:
        Item universe of the clustered dataset (used by
        :meth:`logical_db` so differential oracles compare equal).
    vnodes, client_retries, socket_timeout, wire:
        Ring granularity and per-shard client knobs.  Shard clients
        retry transport faults with the *same* forwarded idempotency
        key, so router-side retries stay exactly-once.
    """

    def __init__(
        self,
        shards,
        universe_size: Optional[int] = None,
        vnodes: int = 64,
        client_retries: int = 3,
        socket_timeout: Optional[float] = 30.0,
        wire: str = "auto",
        metrics_registry: Optional[MetricRegistry] = None,
        logger: Optional[JsonLogger] = None,
    ) -> None:
        specs: List[ShardSpec] = []
        if isinstance(shards, dict):
            for name, address in shards.items():
                specs.append(ShardSpec(str(name), tuple(address)))
        else:
            specs = list(shards)
        if not specs:
            raise ValueError("router needs at least one shard")
        self.universe_size = universe_size
        self._log = logger if logger is not None else JsonLogger("router")
        self._client_options = dict(
            socket_timeout=socket_timeout, retries=client_retries, wire=wire
        )
        self._shards: Dict[str, _ShardHandle] = {}
        for spec in sorted(specs, key=lambda s: s.name):
            self._shards[spec.name] = _ShardHandle(
                name=spec.name,
                address=tuple(spec.address),
                client=self._make_client(spec.address),
                replica_address=(
                    tuple(spec.replica_address)
                    if spec.replica_address is not None
                    else None
                ),
            )
        names = list(self._shards)
        self.ring = HashRing(names, vnodes=vnodes)
        self.directory = TidDirectory(names)
        self.dedupe = DedupeTable()
        self._topology = _RWLock()
        self._mutation_lock = threading.RLock()
        self._router_client_id = f"router-{uuid.uuid4().hex[:8]}"
        self._next_router_request = 0
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, len(names)), thread_name_prefix="repro-scatter"
        )
        self._prober: Optional[threading.Thread] = None
        self._prober_stop = threading.Event()
        self._closed = False

        registry = metrics_registry if metrics_registry is not None else MetricRegistry()
        self.registry = registry
        self._subqueries = registry.counter(
            "repro_cluster_router_requests_total",
            "Scatter sub-queries sent to shard nodes",
            labelnames=("shard",),
        )
        self._mutations = registry.counter(
            "repro_cluster_router_mutations_total",
            "Mutations routed to shard owners",
            labelnames=("shard",),
        )
        self._failovers = registry.counter(
            "repro_cluster_failovers_total",
            "Replica promotions driven by health probes",
            labelnames=("shard",),
        )
        self._rows_moved = registry.counter(
            "repro_cluster_rows_moved_total",
            "Rows moved off a shard by online rebalance",
            labelnames=("shard",),
        )
        rows_gauge = registry.gauge(
            "repro_cluster_shard_rows",
            "Logical rows currently mapped to each shard",
            labelnames=("shard",),
        )
        for name in names:
            # Pre-register every label set so a scrape shows the full
            # per-shard breakdown from the first request.
            self._subqueries.labels(shard=name)
            self._mutations.labels(shard=name)
            self._failovers.labels(shard=name)
            self._rows_moved.labels(shard=name)
            rows_gauge.labels(shard=name).set_function(
                lambda n=name: float(self.directory.per_shard_counts()
                                     .get(n, {}).get("mapped", 0))
            )

    # ------------------------------------------------------------------
    @property
    def supports_lsh_tier(self) -> bool:
        """The router forwards the sketch tier on scatter legs.

        Whether a given query succeeds is decided shard-side (a shard
        without a sketch column rejects it ``bad_request``), so the
        router-fronting server admits lsh batches unconditionally.
        """
        return True

    def _make_client(self, address) -> ServiceClient:
        host, port = address
        return ServiceClient(host, int(port), **self._client_options)

    def _router_key(self) -> Dict[str, object]:
        """A fresh router-stamped idempotency key (internal mutations)."""
        self._next_router_request += 1
        return {
            "client_id": self._router_client_id,
            "request_id": self._next_router_request,
        }

    def _forward_key(self, client_id, request_id) -> Dict[str, object]:
        """The shard-side idempotency key for one routed mutation.

        The client's own key travels unchanged, so an end-to-end retry
        (client -> router -> shard, possibly a just-promoted replica)
        re-presents the key the shard's dedupe table already knows.
        """
        if client_id is not None:
            return {"client_id": client_id, "request_id": request_id}
        return self._router_key()

    def _forward(self, client: ServiceClient, message: Dict[str, object]):
        try:
            return client.request(dict(message))
        except (ServiceError, OSError, ConnectionError) as exc:
            raise _translate(exc) from exc

    # ------------------------------------------------------------------
    # Engine surface (queries)
    # ------------------------------------------------------------------
    def run_batch(self, key, similarity, targets, workers=None):
        """Scatter one coalesced batch to every shard and merge exactly."""
        if similarity_key(similarity) != key.similarity:
            raise ValueError(
                f"similarity {similarity_key(similarity)!r} does not match "
                f"batch key {key.similarity!r}"
            )
        if key.op == "knn" and key.guarantee_tolerance is not None:
            raise ValueError(
                "guarantee_tolerance is not supported by the cluster merge"
            )
        target_lists = [[int(i) for i in t] for t in targets]
        if not target_lists:
            return [], []
        # The batcher propagates a sole rider's correlation id onto this
        # thread; fall back to a router-minted scatter id so shard-side
        # log lines always correlate to *something*.
        cid = current_correlation_id() or f"scatter-{uuid.uuid4().hex[:12]}"
        # An active tracer (the batcher's engine tracer) turns the
        # scatter into one distributed trace: every leg carries a trace
        # context naming a pre-minted leg span id, and the shard's
        # returned span tree is grafted back under that leg.
        tracer = current_tracer()
        trace_id = None
        if tracer is not None:
            trace_id = tracer.trace_id or new_trace_id()
        with self._topology.read():
            reverse = self.directory.reverse_maps()
            total = len(self.directory)
            head_room = self.directory.unmapped
            handles = list(self._shards.values())
            if key.op == "knn":
                asked = int(key.k) + head_room
                base = {
                    "op": "knn",
                    "similarity": similarity.name,
                    "k": asked,
                    "sort_by": key.sort_by,
                    "correlation_id": cid,
                }
                if key.early_termination is not None:
                    base["early_termination"] = key.early_termination
            else:
                asked = None
                base = {
                    "op": "range",
                    "similarity": similarity.name,
                    "threshold": key.threshold,
                    "correlation_id": cid,
                }
            if key.candidate_tier != "exact":
                # Forward the sketch tier to every scatter leg; each
                # shard prefilters its own slice and the merged stats
                # carry the conservative (min) estimated recall.
                base["candidate_tier"] = key.candidate_tier
                if key.target_recall is not None:
                    base["target_recall"] = key.target_recall
            contexts = self._leg_contexts(handles, trace_id)
            per_shard, legs = self._scatter(
                handles, base, target_lists, contexts
            )
            if tracer is not None:
                self._record_legs(tracer, legs, phase="scatter")
            merge_start = time.perf_counter() if tracer is not None else 0.0
            results: List[List[Neighbor]] = []
            stats: List[SearchStats] = []
            refine: List[int] = []
            for q in range(len(target_lists)):
                partials: List[List[Neighbor]] = []
                partial_stats: List[SearchStats] = []
                truncated_at: List[float] = []
                for handle in handles:
                    neighbors, shard_stats = per_shard[handle.name][q]
                    partials.append(
                        self._to_global(reverse[handle.name], neighbors)
                    )
                    partial_stats.append(shard_stats)
                    if asked is not None and len(neighbors) == asked:
                        truncated_at.append(neighbors[-1].similarity)
                merged = merge_neighbor_lists(partials, k=key.k)
                results.append(merged)
                stats.append(merge_search_stats(partial_stats, total))
                if (
                    asked is not None
                    and key.early_termination is None
                    and len(merged) == key.k
                    and any(t >= merged[-1].similarity for t in truncated_at)
                ):
                    refine.append(q)
            if tracer is not None:
                tracer.record(
                    "router.merge",
                    merge_start,
                    time.perf_counter(),
                    queries=len(target_lists),
                    shards=len(handles),
                    refined=len(refine),
                )
            # Tie-complete second pass: a shard truncated exactly at the
            # provisional k-th similarity, so rows tied at the boundary
            # may be hidden behind its local-order cut.  Re-ask as a
            # range query at that similarity (no truncation) and merge
            # globally — ties now break by global tid, like the oracle.
            for q in refine:
                threshold = results[q][-1].similarity
                base = {
                    "op": "range",
                    "similarity": similarity.name,
                    "threshold": threshold,
                    "correlation_id": cid,
                }
                if key.candidate_tier != "exact":
                    base["candidate_tier"] = key.candidate_tier
                    if key.target_recall is not None:
                        base["target_recall"] = key.target_recall
                tie_contexts = self._leg_contexts(handles, trace_id)
                tie_pass, tie_legs = self._scatter(
                    handles, base, [target_lists[q]], tie_contexts
                )
                if tracer is not None:
                    self._record_legs(tracer, tie_legs, phase="tie_complete")
                partials = [
                    self._to_global(
                        reverse[handle.name], tie_pass[handle.name][0][0]
                    )
                    for handle in handles
                ]
                results[q] = merge_neighbor_lists(partials, k=key.k)
        return results, stats

    @staticmethod
    def _leg_contexts(handles, trace_id: Optional[str]):
        """One pre-minted scatter-leg trace context per shard, or ``None``."""
        if trace_id is None:
            return None
        return {
            handle.name: TraceContext(
                trace_id=trace_id,
                parent_span_id=new_span_id(),
                sampled=True,
            )
            for handle in handles
        }

    def _record_legs(self, tracer, legs, phase: str) -> None:
        """Retroactively record scatter-leg spans and graft shard trees.

        The legs ran on scatter-pool threads where no tracer was active;
        their timing was captured raw and is turned into spans here, on
        the thread that owns ``tracer``.  Each shard's returned span
        trees are re-anchored at the leg's send time — shard-internal
        durations are exact, the absolute offset is network-bound.
        """
        for name in sorted(legs):
            leg = legs[name]
            if leg is None:
                continue
            leg_span = tracer.record(
                "router.scatter",
                leg["start_s"],
                leg["end_s"],
                shard=name,
                span_id=leg["context"].parent_span_id,
                phase=phase,
                subqueries=len(leg["traces"]),
            )
            for remote_spans in leg["traces"]:
                graft_remote_trace(
                    tracer,
                    remote_spans,
                    leg["start_s"],
                    parent=leg_span,
                    shard=name,
                )

    def _scatter(self, handles, base, target_lists, contexts=None):
        """Run the per-target request loop on every shard in parallel.

        ``contexts`` (shard name -> :class:`TraceContext`, or ``None``
        when untraced) turns each leg into a traced sub-request: the
        context rides the wire, the shard's span tree comes back inline,
        and the per-leg timing is captured for retroactive span
        recording.  Returns ``(per_shard_results, per_shard_legs)``;
        legs are ``None`` entries when untraced.
        """

        def one_shard(handle: _ShardHandle):
            ctx = None if contexts is None else contexts[handle.name]
            start_s = time.perf_counter() if ctx is not None else 0.0
            out = []
            traces = []
            for items in target_lists:
                message = dict(base, items=items)
                if ctx is not None:
                    message["trace"] = True
                    message["trace_context"] = ctx.encode()
                response = self._forward(handle.client, message)
                self._subqueries.labels(shard=handle.name).inc()
                out.append(
                    (
                        decode_neighbors(response["results"]),
                        decode_search_stats(response["stats"]),
                    )
                )
                if ctx is not None:
                    traces.append(response.get("trace") or [])
            leg = None
            if ctx is not None:
                leg = {
                    "context": ctx,
                    "start_s": start_s,
                    "end_s": time.perf_counter(),
                    "traces": traces,
                }
            return out, leg

        futures = {
            handle.name: self._pool.submit(one_shard, handle)
            for handle in handles
        }
        per_shard = {}
        legs = {}
        for name, future in futures.items():
            per_shard[name], legs[name] = future.result()
        return per_shard, legs

    @staticmethod
    def _to_global(reverse, neighbors: List[Neighbor]) -> List[Neighbor]:
        """Map shard-local result tids to global tids, dropping unmapped."""
        out: List[Neighbor] = []
        size = len(reverse)
        for nb in neighbors:
            if nb.tid < size:
                global_tid = int(reverse[nb.tid])
                if global_tid >= 0:
                    out.append(Neighbor(tid=global_tid,
                                        similarity=nb.similarity))
        return out

    # ------------------------------------------------------------------
    # Live-index surface (mutations)
    # ------------------------------------------------------------------
    def insert(self, items, client_id=None, request_id=None) -> int:
        items = [int(i) for i in items]
        if not items:
            raise ValueError("insert needs a non-empty transaction")
        with self._mutation_lock:
            if client_id is not None:
                cached = self.dedupe.lookup(client_id, request_id)
                if cached is not None:
                    return int(cached["tid"])
            with self._topology.read():
                shard = self.ring.owner_of(len(self.directory))
                handle = self._shards[shard]
            with self._topology.write():
                # Reserve the physical slot up front so a query racing
                # the node-side apply already widens its per-shard k.
                expected = self.directory.begin_copy(shard)
            message = dict(
                {"op": "insert", "items": items},
                **self._forward_key(client_id, request_id),
            )
            try:
                response = self._forward(handle.client, message)
            except ProtocolError:
                with self._topology.write():
                    self.directory.cancel_copy(shard)
                raise
            local = int(response["tid"])
            with self._topology.write():
                if local != expected:
                    # Shard-side dedupe replay: the row already exists
                    # (an earlier attempt applied before its ack was
                    # lost) — map that physical row instead of the
                    # reserved slot.
                    self.directory.cancel_copy(shard)
                global_tid = self.directory.assign(shard, local)
            self._mutations.labels(shard=shard).inc()
            if client_id is not None:
                self.dedupe.record(client_id, request_id, {"tid": global_tid})
            return global_tid

    def delete(self, tid, client_id=None, request_id=None) -> None:
        tid = int(tid)
        with self._mutation_lock:
            if client_id is not None:
                cached = self.dedupe.lookup(client_id, request_id)
                if cached is not None:
                    return
            with self._topology.read():
                shard, local = self.directory.lookup(tid)  # raises ValueError
                handle = self._shards[shard]
            message = dict(
                {"op": "delete", "tid": local},
                **self._forward_key(client_id, request_id),
            )
            with self._topology.write():
                # The node's local-tid shift and the directory's must be
                # observed atomically, so the forward rides inside the
                # write section (queries wait out one round trip).
                self._forward(handle.client, message)
                self.directory.remove(tid)
            self._mutations.labels(shard=shard).inc()
            if client_id is not None:
                self.dedupe.record(client_id, request_id, {"deleted": tid})

    def compact(self, repartition: bool = False) -> CompactionReport:
        """Fan compaction out to every shard owner; sum the reports."""
        with self._mutation_lock:
            with self._topology.read():
                handles = list(self._shards.values())
            message: Dict[str, object] = {"op": "compact"}
            if repartition:
                message["repartition"] = True
            started = time.monotonic()
            reports = [
                self._forward(handle.client, message)["compaction"]
                for handle in handles
            ]
            return CompactionReport(
                merged_inserts=sum(int(r["merged_inserts"]) for r in reports),
                dropped_tombstones=sum(
                    int(r["dropped_tombstones"]) for r in reports
                ),
                new_num_transactions=sum(
                    int(r["new_num_transactions"]) for r in reports
                ),
                applied_seqno=max(int(r["applied_seqno"]) for r in reports),
                duration_seconds=time.monotonic() - started,
                repartitioned=bool(repartition),
            )

    def checkpoint(self) -> int:
        with self._mutation_lock:
            with self._topology.read():
                handles = list(self._shards.values())
            return max(
                int(self._forward(h.client, {"op": "checkpoint"})
                    ["applied_seqno"])
                for h in handles
            )

    def probe(self) -> bool:
        """Degraded-mode probe: every shard owner answers ping."""
        try:
            with self._topology.read():
                handles = list(self._shards.values())
            for handle in handles:
                self._forward(handle.client, {"op": "ping"})
            return True
        except ProtocolError:
            return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        with self._topology.read():
            return {
                "kind": "cluster_router",
                "num_transactions": len(self.directory),
                "ring": self.ring.describe(),
                "shards": {
                    name: {
                        "address": list(handle.address),
                        "replica": (
                            list(handle.replica_address)
                            if handle.replica_address
                            else None
                        ),
                        "promoted": handle.promoted,
                        **self.directory.per_shard_counts().get(name, {}),
                    }
                    for name, handle in sorted(self._shards.items())
                },
            }

    def logical_db(self, universe_size: Optional[int] = None
                   ) -> TransactionDatabase:
        """Materialise the cluster's logical database, in global-tid order.

        The terminal-state oracle of the chaos suite compares against
        exactly this (like ``LiveIndex.logical_db`` single-node).
        """
        size = universe_size if universe_size is not None else self.universe_size
        with self._topology.read():
            assignment = [
                self.directory.lookup(g) for g in range(len(self.directory))
            ]
            wanted: Dict[str, List[int]] = {}
            for shard, local in assignment:
                wanted.setdefault(shard, []).append(local)
            fetched: Dict[str, Dict[int, List[int]]] = {}
            for shard, locals_ in wanted.items():
                response = self._forward(
                    self._shards[shard].client,
                    {"op": "rows", "tids": sorted(set(locals_))},
                )
                fetched[shard] = dict(
                    zip(sorted(set(locals_)), response["rows"])
                )
            rows = [fetched[shard][local] for shard, local in assignment]
        return TransactionDatabase(rows, universe_size=size)

    def ring_info(self) -> Dict[str, object]:
        return {
            "ring": self.ring.describe(),
            "topology": self.describe()["shards"],
            "unmapped_rows": self.directory.unmapped,
        }

    def gather_metrics(self) -> MetricRegistry:
        """Scatter ``metrics`` to every node; merge with the router's own.

        Counters and histograms merge exactly (the merged exposition
        equals one registry that saw every observation — see
        :meth:`~repro.obs.registry.MetricRegistry.merge`); gauges gain a
        ``source`` label naming the process they came from (``router``
        or the shard name).
        """
        with self._topology.read():
            handles = list(self._shards.values())

        def one_shard(handle: _ShardHandle):
            response = self._forward(
                handle.client, {"op": "metrics", "format": "json"}
            )
            return handle.name, response["metrics"]

        futures = [self._pool.submit(one_shard, h) for h in handles]
        sources: Dict[str, object] = {"router": self.registry}
        for future in futures:
            name, payload = future.result()
            sources[name] = payload
        try:
            return MetricRegistry.merge(sources, gauge_label="source")
        except ValueError as exc:
            raise ProtocolError(
                "internal", f"cluster metrics merge failed: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def start_probes(
        self,
        interval: float = 0.5,
        failure_threshold: int = 2,
        probe_timeout: float = 1.0,
    ) -> None:
        """Start the background health prober driving failover."""
        if self._prober is not None:
            return
        self._probe_interval = float(interval)
        self._failure_threshold = int(failure_threshold)
        self._probe_timeout = float(probe_timeout)
        self._prober = threading.Thread(
            target=self._probe_loop, name="repro-router-prober", daemon=True
        )
        self._prober.start()

    def _probe_loop(self) -> None:
        while not self._prober_stop.wait(self._probe_interval):
            for handle in list(self._shards.values()):
                if handle.replica_address is None:
                    continue
                if self._probe_owner(handle):
                    handle.probe_failures = 0
                else:
                    handle.probe_failures += 1
                    if handle.probe_failures >= self._failure_threshold:
                        self._failover(handle)

    def _probe_owner(self, handle: _ShardHandle) -> bool:
        try:
            host, port = handle.address
            with ServiceClient(
                host, port, socket_timeout=self._probe_timeout, retries=0
            ) as probe:
                return probe.ping()
        except Exception:
            return False

    def _failover(self, handle: _ShardHandle) -> None:
        """Promote the shard's replica and swap routing onto it."""
        replica_address = handle.replica_address
        if replica_address is None:
            return
        try:
            host, port = replica_address
            with ServiceClient(
                host, port, socket_timeout=self._probe_timeout, retries=1
            ) as control:
                control.promote()
            new_client = self._make_client(replica_address)
        except Exception as exc:
            self._log.warning(
                "cluster.failover_blocked", shard=handle.name, error=str(exc)
            )
            return  # replica unreachable too; retry next probe round
        with self._topology.write():
            old_client = handle.client
            handle.client = new_client
            handle.address = replica_address
            handle.replica_address = None
            handle.promoted = True
            handle.probe_failures = 0
        old_client.close()
        self._failovers.labels(shard=handle.name).inc()
        self._log.info(
            "cluster.failover", shard=handle.name,
            address=f"{replica_address[0]}:{replica_address[1]}",
        )

    # ------------------------------------------------------------------
    # Online rebalance
    # ------------------------------------------------------------------
    def rebalance(self, source: str, target: str, fraction: float = 0.5
                  ) -> Dict[str, object]:
        """Move part of ``source``'s ring span — and its rows — to ``target``.

        Runs entirely online: the vnodes move first, then each affected
        row goes through copy → directory flip → source delete, with
        queries draining between steps (unmapped copies are dropped and
        covered by the ``k`` head-room, so in-flight scatters never see
        a row twice or lose one).
        """
        source, target = str(source), str(target)
        with self._mutation_lock:
            if source not in self._shards or target not in self._shards:
                raise ProtocolError(
                    "bad_request",
                    f"unknown shard in rebalance {source!r} -> {target!r}",
                )
            if source == target:
                raise ProtocolError(
                    "bad_request", "rebalance needs two distinct shards"
                )
            try:
                with self._topology.write():
                    moved_vnodes = self.ring.reassign(source, target, fraction)
            except ValueError as exc:
                raise ProtocolError("bad_request", str(exc)) from None
            candidates = [
                g
                for g in range(len(self.directory))
                if self.directory.lookup(g)[0] == source
                and self.ring.owner_of(g) == target
            ]
            for g in candidates:
                self._move_row(g, target)
            self._rows_moved.labels(shard=source).inc(len(candidates))
            self._log.info(
                "cluster.rebalanced", source=source, target=target,
                rows=len(candidates), vnodes=moved_vnodes,
            )
            return {
                "moved_rows": len(candidates),
                "moved_vnodes": moved_vnodes,
                "ring": self.ring.describe(),
                "shards": self.directory.per_shard_counts(),
            }

    def _move_row(self, global_tid: int, target: str) -> None:
        """Two-phase move of one row; queries keep running throughout."""
        with self._topology.read():
            source, source_local = self.directory.lookup(global_tid)
            source_handle = self._shards[source]
            target_handle = self._shards[target]
        row = self._forward(
            source_handle.client, {"op": "rows", "tids": [source_local]}
        )["rows"][0]
        with self._topology.write():
            expected = self.directory.begin_copy(target)
        try:
            response = self._forward(
                target_handle.client,
                dict({"op": "insert", "items": row}, **self._router_key()),
            )
        except ProtocolError:
            with self._topology.write():
                self.directory.cancel_copy(target)
            raise
        target_local = int(response["tid"])
        with self._topology.write():
            if target_local != expected:
                self.directory.cancel_copy(target)
                self.directory.record_physical(target, target_local)
            old_source, old_local = self.directory.commit_move(
                global_tid, target, target_local
            )
        with self._topology.write():
            # Node-side local tids shift on delete; mirror atomically.
            self._forward(
                source_handle.client,
                dict({"op": "delete", "tid": old_local}, **self._router_key()),
            )
            self.directory.end_move(old_source, old_local)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop probing and close every shard connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._prober_stop.set()
        if self._prober is not None:
            self._prober.join(timeout=5.0)
        self._pool.shutdown(wait=False)
        for handle in self._shards.values():
            handle.client.close()


class RouterServer(QueryServer):
    """A :class:`QueryServer` whose engine *and* live index are the router.

    Construct with ``RouterServer(router, live_index=router, ...)`` —
    queries micro-batch as usual and scatter through
    :meth:`ClusterRouter.run_batch`; mutations route through the
    directory.  Adds the ``ring`` and ``rebalance`` cluster ops.
    """

    def __init__(self, engine, **options) -> None:
        if not isinstance(engine, ClusterRouter):
            raise TypeError("RouterServer fronts a ClusterRouter engine")
        options.setdefault("live_index", engine)
        options.setdefault("metrics_registry", engine.registry)
        super().__init__(engine, **options)
        self.router: ClusterRouter = engine

    async def _metrics_registry(self, scope: str):
        """``scope="cluster"`` scatter-gathers every node's registry."""
        if scope == "cluster":
            return await asyncio.get_running_loop().run_in_executor(
                None, self.router.gather_metrics
            )
        return self.metrics.registry

    async def _dispatch_cluster(self, message, writer, write_lock, conn) -> bool:
        op = message["op"]
        request_id = message.get("id")
        if op == "ring":
            payload = await asyncio.get_running_loop().run_in_executor(
                None, self.router.ring_info
            )
            await self._send(
                writer, write_lock, conn.encode_ok(request_id, payload)
            )
            return True
        if op == "rebalance":
            source = message.get("source")
            target = message.get("target")
            fraction = message.get("fraction", 0.5)
            if (
                not isinstance(source, str)
                or not isinstance(target, str)
                or not isinstance(fraction, (int, float))
            ):
                self.metrics.record_rejection("bad_request")
                await self._send(
                    writer,
                    write_lock,
                    conn.encode_error(
                        request_id,
                        "bad_request",
                        "rebalance needs source, target and a numeric "
                        "fraction",
                    ),
                )
                return True
            try:
                payload = await asyncio.get_running_loop().run_in_executor(
                    None,
                    functools.partial(
                        self.router.rebalance, source, target, float(fraction)
                    ),
                )
            except ProtocolError as exc:
                self.metrics.record_rejection(exc.code)
                await self._send(
                    writer,
                    write_lock,
                    conn.encode_error(request_id, exc.code, exc.message),
                )
                return True
            await self._send(
                writer, write_lock, conn.encode_ok(request_id, payload)
            )
            return True
        return False
