"""Page-granular storage simulation.

The paper's efficiency argument is about *disk I/O*: the signature table
keeps its ``2^K`` directory in main memory and lays transactions out on
disk clustered by supercoordinate, so the branch-and-bound search reads a
few contiguous page runs, while an inverted index must fetch candidates
scattered across the whole file (the "page-scattering effect" of
Section 5.1).

We cannot (and need not) reproduce 1999 disk hardware; the paper's I/O
claims are counting claims.  :class:`~repro.storage.pages.PagedStore`
deterministically maps transactions to pages under a chosen storage order
and counts pages read and non-contiguous seeks;
:class:`~repro.storage.pages.DiskModel` turns the counts into an estimated
cost for reporting.
"""

from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.pages import DiskModel, IOCounters, PagedStore

__all__ = ["DiskModel", "IOCounters", "PagedStore", "BufferPool", "BufferStats"]
