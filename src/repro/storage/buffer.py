"""LRU buffer pool over the simulated disk.

The per-query page cache used by the searcher models an unlimited buffer
that is dropped between queries.  :class:`BufferPool` is the realistic
variant: a bounded LRU pool shared *across* queries, as a database buffer
manager would provide.  It fronts a :class:`~repro.storage.pages.PagedStore`
and charges the backing :class:`~repro.storage.pages.IOCounters` only for
misses, while keeping its own hit/miss statistics.

The buffer-size ablation benchmark uses it to show how the signature
table's clustered layout turns a modest pool into a high hit rate for
query workloads with correlated targets.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.storage.pages import IOCounters, PagedStore
from repro.utils.validation import check_positive


@dataclass
class BufferStats:
    """Hit/miss counters of a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from the pool."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def merge(self, other: "BufferStats") -> "BufferStats":
        """Add another pool's totals into this one (returns self).

        Used to recombine the per-worker pool statistics of a batched
        multi-process run into one report.
        """
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        return self

    def as_dict(self) -> dict:
        """JSON-safe snapshot (trace spans, metrics endpoints, reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def delta(self, since: "BufferStats") -> "BufferStats":
        """The counter increments accumulated since an earlier snapshot."""
        return BufferStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            evictions=self.evictions - since.evictions,
        )

    def copy(self) -> "BufferStats":
        """An independent snapshot of the current counters."""
        return BufferStats(
            hits=self.hits, misses=self.misses, evictions=self.evictions
        )


class BufferPool:
    """A bounded LRU page cache in front of a :class:`PagedStore`.

    Parameters
    ----------
    store:
        The backing paged store.
    capacity:
        Maximum number of resident pages.
    """

    def __init__(self, store: PagedStore, capacity: int) -> None:
        check_positive(capacity, "capacity")
        self.store = store
        self.capacity = int(capacity)
        self.stats = BufferStats()
        # OrderedDict as LRU: keys are page ids, most recent at the end.
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def resident_pages(self) -> int:
        """Number of pages currently in the pool."""
        return len(self._resident)

    def contains(self, page: int) -> bool:
        """Whether a page is resident (does not touch recency)."""
        return page in self._resident

    def clear(self) -> None:
        """Drop all resident pages (statistics are kept)."""
        self._resident.clear()

    # ------------------------------------------------------------------
    def _touch(self, page: int) -> bool:
        """Mark a page used; returns True on hit, False on miss+load."""
        if page in self._resident:
            self._resident.move_to_end(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._resident[page] = None
        if len(self._resident) > self.capacity:
            self._resident.popitem(last=False)
            self.stats.evictions += 1
        return False

    def read(self, tids: Sequence[int], counters: Optional[IOCounters] = None) -> int:
        """Read transactions through the pool.

        Misses are charged to ``counters`` (pages and seek runs over the
        missed pages only); hits are free.  Returns the number of missed
        pages.
        """
        tid_array = np.asarray(tids, dtype=np.int64)
        pages = self.store.pages_for(tid_array)
        return self.read_pages(pages.tolist(), int(tid_array.size), counters)

    def read_pages(
        self,
        pages: Sequence[int],
        num_transactions: int,
        counters: Optional[IOCounters] = None,
    ) -> int:
        """Read a pre-resolved page set.

        Identical accounting to :meth:`read`, for callers that know the
        page set up front (the batched engine caches each table entry's
        pages once per batch).  The input is normalised to a sorted,
        distinct page set first — unsorted or duplicated pages would
        otherwise inflate the seek count (every out-of-order page starts
        a new "run") and double-charge repeated pages as misses.  Returns
        the number of missed pages.
        """
        page_array = np.unique(np.asarray(pages, dtype=np.int64))
        missed = [page for page in page_array.tolist() if not self._touch(page)]
        if counters is not None:
            counters.transactions_read += num_transactions
            counters.pages_read += len(missed)
            counters.seeks += PagedStore._count_runs(
                np.asarray(missed, dtype=np.int64)
            )
        return len(missed)
