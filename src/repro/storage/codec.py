"""Transaction encoding (delta + varint).

The page simulator's default unit is "transactions per page".  To ground
that in bytes, this module implements the standard on-disk encoding for
sorted id lists — delta compression followed by LEB128 varints — and
derives realistic page capacities from the *actual* encoded sizes:

* :func:`encode_transaction` / :func:`decode_transaction` — one sorted
  item array to/from bytes.
* :func:`encode_database` / :func:`decode_database` — whole database with
  a length-prefixed record stream.
* :func:`estimate_page_capacity` — how many (average) encoded
  transactions fit a page of ``page_bytes``.

Deltas of sorted ids are small, so most gaps fit one byte; a T10 basket
over 1000 items encodes in ~12-14 bytes instead of 80 raw int64 bytes.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.data.transaction import TransactionDatabase, as_item_array
from repro.utils.validation import check_positive


def _encode_varint(value: int, out: bytearray) -> None:
    """LEB128: 7 data bits per byte, high bit = continuation."""
    if value < 0:
        raise ValueError(f"varints encode non-negative ints, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Return ``(value, next_offset)``; raises on truncation."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_transaction(transaction: Iterable[int]) -> bytes:
    """Encode one transaction: count, first id, then deltas (all varint)."""
    items = as_item_array(transaction)
    out = bytearray()
    _encode_varint(items.size, out)
    previous = 0
    for item in items:
        _encode_varint(int(item) - previous, out)
        previous = int(item)
    return bytes(out)


def decode_transaction(data: bytes, offset: int = 0) -> Tuple[np.ndarray, int]:
    """Decode one transaction; returns ``(items, next_offset)``.

    Raises :class:`ValueError` on truncation and on streams whose deltas
    would yield a non-strictly-increasing id list (a zero delta after the
    first id) — corruption must never silently decode into a structurally
    valid transaction the encoder could not have produced.
    """
    count, offset = _decode_varint(data, offset)
    if count > len(data) - offset:
        # Every item takes at least one varint byte; a count the stream
        # cannot possibly hold is corruption.  Checking before the
        # allocation keeps a flipped count byte from requesting gigabytes.
        raise ValueError(
            f"truncated record: count {count} exceeds the "
            f"{len(data) - offset} remaining bytes"
        )
    items = np.empty(count, dtype=np.int64)
    previous = 0
    for position in range(count):
        delta, offset = _decode_varint(data, offset)
        if position > 0 and delta == 0:
            raise ValueError(
                f"zero delta at position {position}: ids must be strictly increasing"
            )
        previous += delta
        items[position] = previous
    return items, offset


def encode_database(db: TransactionDatabase) -> bytes:
    """Encode a whole database as a concatenated record stream."""
    out = bytearray()
    _encode_varint(len(db), out)
    _encode_varint(db.universe_size, out)
    for tid in range(len(db)):
        out.extend(encode_transaction(db.items_of(tid)))
    return bytes(out)


def decode_database(data: bytes) -> TransactionDatabase:
    """Decode a database previously produced by :func:`encode_database`."""
    count, offset = _decode_varint(data, 0)
    universe_size, offset = _decode_varint(data, offset)
    rows: List[np.ndarray] = []
    for _ in range(count):
        items, offset = decode_transaction(data, offset)
        rows.append(items)
    if offset != len(data):
        raise ValueError(
            f"{len(data) - offset} trailing bytes after the last record"
        )
    return TransactionDatabase(rows, universe_size=universe_size)


def encoded_sizes(db: TransactionDatabase) -> np.ndarray:
    """Per-transaction encoded size in bytes."""
    return np.fromiter(
        (len(encode_transaction(db.items_of(tid))) for tid in range(len(db))),
        dtype=np.int64,
        count=len(db),
    )


def estimate_page_capacity(db: TransactionDatabase, page_bytes: int = 4096) -> int:
    """Average number of encoded transactions that fit one page.

    Use this to choose the simulator's ``page_size`` from a physical page
    size: ``PagedStore(n, page_size=estimate_page_capacity(db, 4096))``.
    """
    check_positive(page_bytes, "page_bytes")
    if len(db) == 0:
        return 1
    mean_bytes = float(encoded_sizes(db).mean())
    return max(1, int(page_bytes / max(mean_bytes, 1e-9)))
