"""Page-based disk model.

:class:`PagedStore` assigns every transaction a page under a fixed storage
order (``page = position // page_size``) and provides read primitives that
account, in an :class:`IOCounters`, for

* ``transactions_read`` — logical records touched,
* ``pages_read`` — distinct pages fetched, and
* ``seeks`` — the number of non-contiguous page runs (a sequential scan of
  ``p`` pages is 1 seek + ``p`` transfers; fetching ``p`` scattered pages
  is ``p`` seeks + ``p`` transfers).

:class:`DiskModel` converts counters into an estimated elapsed time using a
classical seek + transfer cost model, which is how the benchmarks translate
"percentage of transactions accessed" into the paper's page-scattering
discussion (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive


@dataclass
class IOCounters:
    """Mutable accumulator of simulated I/O activity.

    The write-side fields (``pages_written``, ``fsyncs``) default to zero
    so read-only paths keep producing counters equal to pre-write-path
    ones; the WAL and compaction charge them so ingest costs show up in
    the same reports queries use.
    """

    transactions_read: int = 0
    pages_read: int = 0
    seeks: int = 0
    pages_written: int = 0
    fsyncs: int = 0

    def merge(self, other: "IOCounters") -> "IOCounters":
        """Add another counter's totals into this one (returns self)."""
        self.transactions_read += other.transactions_read
        self.pages_read += other.pages_read
        self.seeks += other.seeks
        self.pages_written += other.pages_written
        self.fsyncs += other.fsyncs
        return self

    def reset(self) -> None:
        self.transactions_read = 0
        self.pages_read = 0
        self.seeks = 0
        self.pages_written = 0
        self.fsyncs = 0

    def copy(self) -> "IOCounters":
        return IOCounters(
            self.transactions_read,
            self.pages_read,
            self.seeks,
            self.pages_written,
            self.fsyncs,
        )


@dataclass(frozen=True)
class DiskModel:
    """Seek + transfer disk cost model.

    Defaults approximate a late-1990s disk (10 ms average seek, 1 ms to
    transfer a page); the *absolute* values only scale the reported cost —
    every comparison in the benchmarks is a ratio.
    """

    seek_ms: float = 10.0
    transfer_ms: float = 1.0
    #: Writing a page costs one transfer by default; an fsync costs one
    #: seek (the head settles before the platter acknowledges).  Both are
    #: multiplied by counters that read-only paths leave at zero, so the
    #: model is backward compatible with pre-write-path reports.
    write_ms: Optional[float] = None
    fsync_ms: Optional[float] = None

    def cost_ms(self, counters: IOCounters) -> float:
        """Estimated elapsed time for the recorded activity."""
        write_ms = self.transfer_ms if self.write_ms is None else self.write_ms
        fsync_ms = self.seek_ms if self.fsync_ms is None else self.fsync_ms
        return (
            self.seek_ms * counters.seeks
            + self.transfer_ms * counters.pages_read
            + write_ms * counters.pages_written
            + fsync_ms * counters.fsyncs
        )


class PagedStore:
    """Transactions laid out on pages in a chosen storage order.

    Parameters
    ----------
    num_transactions:
        Number of records stored.
    page_size:
        Records per page.
    order:
        TIDs in on-disk order; defaults to natural order ``0..n-1``.  The
        signature table passes its supercoordinate-clustered order so each
        table entry occupies a contiguous run of pages.
    """

    def __init__(
        self,
        num_transactions: int,
        page_size: int = 64,
        order: Optional[Sequence[int]] = None,
    ) -> None:
        check_positive(num_transactions, "num_transactions", strict=False)
        check_positive(page_size, "page_size")
        self._n = int(num_transactions)
        self._page_size = int(page_size)
        if order is None:
            positions = np.arange(self._n, dtype=np.int64)
        else:
            order_array = np.asarray(order, dtype=np.int64)
            if order_array.shape != (self._n,):
                raise ValueError(
                    f"order must contain exactly {self._n} tids, "
                    f"got shape {order_array.shape}"
                )
            if not np.array_equal(np.sort(order_array), np.arange(self._n)):
                raise ValueError("order must be a permutation of 0..n-1")
            positions = np.empty(self._n, dtype=np.int64)
            positions[order_array] = np.arange(self._n, dtype=np.int64)
        self._positions = positions

    # ------------------------------------------------------------------
    @property
    def num_transactions(self) -> int:
        return self._n

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def num_pages(self) -> int:
        """Total pages occupied by the store."""
        return -(-self._n // self._page_size) if self._n else 0

    def page_of(self, tid: int) -> int:
        """Page holding transaction ``tid``."""
        if not 0 <= tid < self._n:
            raise IndexError(f"tid {tid} out of range [0, {self._n})")
        return int(self._positions[tid]) // self._page_size

    def pages_for(self, tids: Sequence[int]) -> np.ndarray:
        """Distinct pages (sorted) holding the given transactions."""
        tid_array = np.asarray(tids, dtype=np.int64)
        if tid_array.size == 0:
            return np.empty(0, dtype=np.int64)
        if tid_array.min() < 0 or tid_array.max() >= self._n:
            raise IndexError("tids out of range")
        return np.unique(self._positions[tid_array] // self._page_size)

    # ------------------------------------------------------------------
    @staticmethod
    def _count_runs(pages: np.ndarray) -> int:
        """Number of maximal contiguous page runs in a sorted page array."""
        if pages.size == 0:
            return 0
        return int(1 + np.count_nonzero(np.diff(pages) > 1))

    def read(
        self,
        tids: Sequence[int],
        counters: IOCounters,
        page_cache: Optional[set] = None,
    ) -> np.ndarray:
        """Record a read of the given transactions; returns the pages used.

        Counts each distinct page once and one seek per non-contiguous page
        run — the random-access pattern of an index probe.

        Parameters
        ----------
        page_cache:
            Optional set of page ids already resident (a per-query buffer
            pool).  Cached pages cost nothing; newly read pages are added
            to the cache.  The branch-and-bound search passes one cache per
            query so that entries sharing a page are not double-charged.
        """
        tid_array = np.asarray(tids, dtype=np.int64)
        pages = self.pages_for(tid_array)
        counters.transactions_read += int(tid_array.size)
        if page_cache is not None and pages.size:
            fresh = np.asarray(
                [p for p in pages.tolist() if p not in page_cache],
                dtype=np.int64,
            )
            page_cache.update(fresh.tolist())
        else:
            fresh = pages
        counters.pages_read += int(fresh.size)
        counters.seeks += self._count_runs(fresh)
        return pages

    def read_all_sequential(self, counters: IOCounters) -> None:
        """Record a full sequential scan (1 seek + every page)."""
        counters.transactions_read += self._n
        counters.pages_read += self.num_pages
        counters.seeks += 1 if self._n else 0
