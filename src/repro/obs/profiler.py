"""Low-overhead wall-clock sampling profiler (continuous profiling).

A :class:`SamplingProfiler` runs a daemon thread that wakes ``hz`` times
per second, snapshots every other thread's Python stack via
``sys._current_frames()``, and folds each stack into the
``frame;frame;frame`` **folded-stack** format that flamegraph tooling
(``flamegraph.pl``, speedscope, inferno) consumes directly.

The cost model is the sampler's whole point: the profiled code is never
instrumented — it pays nothing — and the sampler itself costs one
GIL-protected frame walk per tick.  At the default 67 Hz that is well
under the <5% throughput bar ``benchmarks/bench_obs_overhead.py``
enforces; when stopped, the cost is zero.

The default rate is deliberately a prime-ish 67 (not 100) so the
sampler cannot phase-lock with second-aligned periodic work and
systematically over- or under-sample it.

Servers expose a profiler through the ``profile`` control op (one-shot
or continuous; see :mod:`repro.service.server`) and the ``repro
profile`` CLI writes the folded output to stdout, ready for::

    repro profile --port 7800 --duration 2 > out.folded
    flamegraph.pl out.folded > flame.svg
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "DEFAULT_HZ",
    "MAX_STACK_DEPTH",
    "SamplingProfiler",
    "render_folded",
]

#: Default sampling rate (samples per second, per thread).
DEFAULT_HZ = 67.0

#: Frames kept per stack (deepest dropped first) — bounds memory on
#: pathological recursion.
MAX_STACK_DEPTH = 64


def _fold_frame(frame) -> List[str]:
    """One thread's stack as outermost-first ``module:func`` frames."""
    parts: List[str] = []
    while frame is not None and len(parts) < MAX_STACK_DEPTH:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return parts


class SamplingProfiler:
    """Wall-clock stack sampler aggregating into folded-stack counts.

    Parameters
    ----------
    hz:
        Samples per second (clamped to ``0.1 .. 1000``).
    include:
        Optional thread-name substring filter; ``None`` samples every
        thread except the sampler itself.
    """

    def __init__(self, hz: float = DEFAULT_HZ, include: Optional[str] = None):
        hz = float(hz)
        if not (0.1 <= hz <= 1000.0):
            raise ValueError(f"hz must be in [0.1, 1000], got {hz}")
        self.hz = hz
        self.include = include
        self._interval = 1.0 / hz
        self._stacks: Dict[str, int] = {}
        self._samples = 0
        self._started_s: Optional[float] = None
        self._elapsed_s = 0.0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start the sampler thread (no-op if already running)."""
        if self.running:
            return self
        self._stop.clear()
        self._started_s = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (idempotent); accumulated stacks are kept."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self._started_s is not None:
            self._elapsed_s += time.perf_counter() - self._started_s
            self._started_s = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_id = threading.get_ident()
        names = {}
        while not self._stop.wait(self._interval):
            if self.include is not None:
                names = {
                    thread.ident: thread.name
                    for thread in threading.enumerate()
                }
            frames = sys._current_frames()
            folded: List[str] = []
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                if self.include is not None and self.include not in names.get(
                    thread_id, ""
                ):
                    continue
                parts = _fold_frame(frame)
                if parts:
                    folded.append(";".join(parts))
            with self._lock:
                self._samples += 1
                for stack in folded:
                    self._stacks[stack] = self._stacks.get(stack, 0) + 1

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop accumulated stacks and counters (sampling continues)."""
        with self._lock:
            self._stacks.clear()
            self._samples = 0
            self._elapsed_s = 0.0
            if self._started_s is not None:
                self._started_s = time.perf_counter()

    def snapshot(self, reset: bool = False) -> Dict[str, object]:
        """The accumulated profile as a JSON-safe dict.

        ``stacks`` maps folded stack -> sample count; ``samples`` is the
        number of sampler ticks, ``elapsed_s`` the wall time covered.
        """
        with self._lock:
            elapsed = self._elapsed_s
            if self._started_s is not None:
                elapsed += time.perf_counter() - self._started_s
            payload = {
                "hz": self.hz,
                "samples": self._samples,
                "elapsed_s": elapsed,
                "stacks": dict(self._stacks),
            }
            if reset:
                self._stacks.clear()
                self._samples = 0
                self._elapsed_s = 0.0
                if self._started_s is not None:
                    self._started_s = time.perf_counter()
        return payload

    def folded(self) -> str:
        """The profile in folded-stack text (``stack count`` per line).

        Sorted by descending count then stack, so the hottest paths come
        first and output is deterministic for tests.
        """
        with self._lock:
            items = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return "\n".join(f"{stack} {count}" for stack, count in items)


def render_folded(snapshot: Dict[str, object]) -> str:
    """Folded-stack text from a :meth:`SamplingProfiler.snapshot` dict
    (the shape the ``profile`` control op returns over the wire)."""
    stacks = snapshot.get("stacks") or {}
    items = sorted(stacks.items(), key=lambda kv: (-int(kv[1]), kv[0]))
    return "\n".join(f"{stack} {count}" for stack, count in items)
