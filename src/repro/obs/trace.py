"""Hierarchical trace spans with a context-propagated recorder.

A :class:`Tracer` collects a tree of :class:`Span` objects for one
traced unit of work (a request, a batch, an index build).  Activation is
context-local (:mod:`contextvars`), so instrumented library code never
takes a tracer argument — it calls :func:`span` and either records into
the active tracer or gets the shared :data:`NOOP_SPAN` back.

Cost model (pinned by ``benchmarks/bench_obs_overhead.py``):

* **disabled** (no active tracer — the production default): one
  ``ContextVar.get`` plus a ``None`` check per instrumentation point.
  Hot per-entry loops additionally guard with
  ``tracer = current_tracer()`` once per query, so the scan loop itself
  carries no per-entry overhead at all.
* **enabled**: a couple of ``perf_counter`` calls and one small object
  per span.

Tracers are **not** re-entrant across threads: one tracer records from
one thread at a time.  The micro-batcher hands a dedicated tracer to the
engine's executor thread (contextvars do not flow through
``run_in_executor``) and stitches the resulting engine span into each
request's tree; forked engine workers deliberately run untraced — spans
never cross process boundaries.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Dict, List, Optional

_TRACER: "ContextVar[Optional[Tracer]]" = ContextVar(
    "repro_obs_tracer", default=None
)


def current_tracer() -> Optional["Tracer"]:
    """The tracer active in this context, or ``None`` (tracing disabled)."""
    return _TRACER.get()


class Span:
    """One timed operation with attributes, events and child spans."""

    __slots__ = (
        "name", "start_s", "end_s", "attributes", "events", "children",
    )

    def __init__(self, name: str, start_s: float, **attributes: object):
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attributes: Dict[str, object] = dict(attributes)
        self.events: List[Dict[str, object]] = []
        self.children: List["Span"] = []

    def set_attribute(self, key: str, value: object) -> "Span":
        """Attach or overwrite one attribute (chainable)."""
        self.attributes[key] = value
        return self

    def add_event(self, name: str, **fields: object) -> None:
        """Record a point-in-time event inside the span."""
        event = {"name": name, "at_s": time.perf_counter()}
        event.update(fields)
        self.events.append(event)

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self, base_time_s: Optional[float] = None) -> Dict[str, object]:
        """JSON-safe span tree (times in ms relative to ``base_time_s``)."""
        base = self.start_s if base_time_s is None else base_time_s
        payload: Dict[str, object] = {
            "name": self.name,
            "start_ms": 1000.0 * (self.start_s - base),
            "duration_ms": 1000.0 * self.duration_s,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.events:
            payload["events"] = [
                dict(event, at_ms=1000.0 * (event["at_s"] - base))
                for event in self.events
            ]
            for event in payload["events"]:
                event.pop("at_s", None)
        if self.children:
            payload["children"] = [
                child.to_dict(base) for child in self.children
            ]
        return payload

    @classmethod
    def from_dict(
        cls, payload: Dict[str, object], base_s: float
    ) -> "Span":
        """Rebuild a span tree from its :meth:`to_dict` form.

        ``base_s`` anchors the (relative) serialized times in this
        process's ``perf_counter`` domain — callers grafting a remote
        tree pass the local moment the remote work was initiated.  The
        inverse is exact up to that anchor: durations, attributes,
        events and structure round-trip unchanged.
        """
        start_s = base_s + float(payload.get("start_ms", 0.0)) / 1000.0
        rebuilt = cls(str(payload["name"]), start_s)
        rebuilt.end_s = start_s + float(payload.get("duration_ms", 0.0)) / 1000.0
        attributes = payload.get("attributes")
        if isinstance(attributes, dict):
            rebuilt.attributes = dict(attributes)
        events = payload.get("events")
        if isinstance(events, list):
            for event in events:
                fields = dict(event)
                at_ms = fields.pop("at_ms", 0.0)
                fields["at_s"] = base_s + float(at_ms) / 1000.0
                rebuilt.events.append(fields)
        for child in payload.get("children", ()):
            rebuilt.children.append(cls.from_dict(child, base_s))
        return rebuilt


class _NoopSpan:
    """Absorbs the full Span API at (near) zero cost; a shared singleton."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_attribute(self, key: str, value: object) -> "_NoopSpan":
        return self

    def add_event(self, name: str, **fields: object) -> None:
        return None


#: The span every instrumentation point gets when no tracer is active.
NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.set_attribute("error", repr(exc))
        self._tracer._close(self._span)


class Tracer:
    """Recorder for one trace: a stack-shaped collector of span trees.

    Parameters
    ----------
    correlation_id:
        Optional id stamped on every root span (the service uses the
        per-request correlation id, so log lines, metrics, and span trees
        join on one key).
    trace_id:
        Optional distributed-trace id stamped on every root span.  Set
        by the service when a request fans out across processes (see
        :mod:`repro.obs.distributed`) so every process's spans carry the
        same key; ``None`` (the default) adds nothing.
    """

    def __init__(
        self,
        correlation_id: Optional[str] = None,
        trace_id: Optional[str] = None,
    ):
        self.correlation_id = correlation_id
        self.trace_id = trace_id
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> _SpanContext:
        """Open a child span of the innermost open span (or a new root)."""
        opened = Span(name, time.perf_counter(), **attributes)
        self._attach(opened)
        self._stack.append(opened)
        return _SpanContext(self, opened)

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        **attributes: object,
    ) -> Span:
        """Attach an already-timed span retroactively.

        Hot paths measure first and record only if a tracer turned out to
        be active, so the disabled path never constructs spans.
        """
        recorded = Span(name, start_s, **attributes)
        recorded.end_s = end_s
        self._attach(recorded)
        return recorded

    def adopt(self, span: Span) -> Span:
        """Graft a finished span (e.g. from another tracer) into this tree."""
        self._attach(span)
        return span

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            if self.correlation_id is not None:
                span.attributes.setdefault(
                    "correlation_id", self.correlation_id
                )
            if self.trace_id is not None:
                span.attributes.setdefault("trace_id", self.trace_id)
            self.roots.append(span)

    def _close(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)

    # ------------------------------------------------------------------
    def activate(self) -> "_TracerActivation":
        """Context manager installing this tracer in the current context."""
        return _TracerActivation(self)

    def to_dicts(self) -> List[Dict[str, object]]:
        """All root span trees as JSON-safe dicts."""
        base = self.roots[0].start_s if self.roots else None
        return [root.to_dict(base) for root in self.roots]


class _TracerActivation:
    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: Tracer):
        self._tracer = tracer
        self._token = None

    def __enter__(self) -> Tracer:
        self._token = _TRACER.set(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        _TRACER.reset(self._token)


def span(name: str, **attributes: object):
    """Open a span on the active tracer, or return :data:`NOOP_SPAN`.

    Usable as a context manager either way::

        with span("engine.prepare", batch_size=len(targets)) as sp:
            ...
            sp.set_attribute("entries", num_entries)
    """
    tracer = _TRACER.get()
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attributes)
