"""Query-explain: why each signature-table entry was scanned or pruned.

A :class:`SearchTrace` is handed to
:meth:`~repro.core.search.SignatureTableSearcher.knn` (or
``multi_range_query``) and filled by the branch-and-bound loop itself, so
the record is exact, not a re-derivation: every scanned entry appears
with the optimistic bound that ordered it and the pessimistic bound
before/after folding its candidates in, prunes appear with the bound
comparison that justified them, and the termination reason is whichever
exit the scan actually took.

The per-entry counts reconcile with :class:`~repro.core.search.SearchStats`
by construction (``scanned_entries == stats.entries_scanned`` etc.), and
the explain tests pin that down.

:func:`render_explain` turns a trace into the human-readable report the
``repro explain`` CLI prints; :meth:`SearchTrace.to_dict` is the JSON
shape (``--output json`` and programmatic consumers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Termination reasons a scan can record.
TERMINATIONS = (
    "exhausted",            # every entry scanned or individually pruned
    "pruned_tail",          # sorted-by-bound scan hit the first prunable entry
    "guarantee_tolerance",  # best candidate within tolerance of every bound
    "budget",               # early-termination transaction budget exhausted
    "budget_partial_entry", # budget ran out midway through an entry
)


def _fmt(value: float) -> str:
    if value == -math.inf:
        return "-inf"
    return f"{value:.4f}"


@dataclass
class EntryEvent:
    """One decision of the scan loop about one table entry (or a tail).

    ``action`` is ``"scanned"``, ``"pruned"`` (individual entry skipped
    under the supercoordinate order), ``"pruned_tail"`` (every remaining
    entry pruned at once under the bound-sorted order; ``count`` entries)
    or ``"unexplored"`` (left behind by an early termination; ``count``
    entries).  Bounds are ``None`` where they do not apply.
    """

    action: str
    rank: int
    count: int = 1
    entry: Optional[int] = None
    code: Optional[int] = None
    optimistic: Optional[float] = None
    pessimistic_before: Optional[float] = None
    pessimistic_after: Optional[float] = None
    transactions: int = 0

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "action": self.action,
            "rank": self.rank,
            "count": self.count,
        }
        if self.entry is not None:
            payload["entry"] = self.entry
        if self.code is not None:
            payload["supercoordinate"] = format(self.code, "b")
        if self.optimistic is not None:
            payload["optimistic_bound"] = self.optimistic
        if self.pessimistic_before is not None and math.isfinite(
            self.pessimistic_before
        ):
            payload["pessimistic_before"] = self.pessimistic_before
        if self.pessimistic_after is not None and math.isfinite(
            self.pessimistic_after
        ):
            payload["pessimistic_after"] = self.pessimistic_after
        if self.transactions:
            payload["transactions"] = self.transactions
        return payload


@dataclass
class SearchTrace:
    """Entry-by-entry record of one branch-and-bound search.

    Create one and pass it as ``search_trace=`` to the searcher; the
    query runs exactly as without it (the differential tests pin
    byte-identical results) while every scan/prune decision is recorded.
    """

    query: Dict[str, object] = field(default_factory=dict)
    events: List[EntryEvent] = field(default_factory=list)
    termination: str = "exhausted"

    # ------------------------------------------------------------------
    # Recording (called by the scan loop)
    # ------------------------------------------------------------------
    def record_scan(
        self,
        rank: int,
        entry: int,
        code: int,
        optimistic: float,
        pessimistic_before: float,
        pessimistic_after: float,
        transactions: int,
    ) -> None:
        self.events.append(
            EntryEvent(
                action="scanned",
                rank=rank,
                entry=entry,
                code=code,
                optimistic=optimistic,
                pessimistic_before=pessimistic_before,
                pessimistic_after=pessimistic_after,
                transactions=transactions,
            )
        )

    def record_prune(
        self, rank: int, entry: int, code: int, optimistic: float,
        pessimistic: float,
    ) -> None:
        self.events.append(
            EntryEvent(
                action="pruned",
                rank=rank,
                entry=entry,
                code=code,
                optimistic=optimistic,
                pessimistic_before=pessimistic,
            )
        )

    def record_prune_tail(
        self, rank: int, count: int, optimistic: float, pessimistic: float
    ) -> None:
        self.events.append(
            EntryEvent(
                action="pruned_tail",
                rank=rank,
                count=count,
                optimistic=optimistic,
                pessimistic_before=pessimistic,
            )
        )
        self.termination = "pruned_tail"

    def record_unexplored(
        self, rank: int, count: int, reason: str,
        best_possible: Optional[float] = None,
        pessimistic: Optional[float] = None,
    ) -> None:
        if reason not in TERMINATIONS:
            raise ValueError(f"unknown termination reason {reason!r}")
        self.events.append(
            EntryEvent(
                action="unexplored",
                rank=rank,
                count=count,
                optimistic=best_possible,
                pessimistic_before=pessimistic,
            )
        )
        self.termination = reason

    # ------------------------------------------------------------------
    # Reconciliation with SearchStats
    # ------------------------------------------------------------------
    @property
    def scanned_entries(self) -> int:
        return sum(1 for e in self.events if e.action == "scanned")

    @property
    def pruned_entries(self) -> int:
        return sum(
            e.count for e in self.events
            if e.action in ("pruned", "pruned_tail")
        )

    @property
    def unexplored_entries(self) -> int:
        return sum(e.count for e in self.events if e.action == "unexplored")

    @property
    def transactions_accessed(self) -> int:
        return sum(e.transactions for e in self.events)

    def bound_trajectory(self) -> List[Dict[str, float]]:
        """The (optimistic, pessimistic-after) sequence over scanned entries."""
        return [
            {
                "rank": e.rank,
                "optimistic": e.optimistic,
                "pessimistic": e.pessimistic_after,
            }
            for e in self.events
            if e.action == "scanned"
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe report (the ``repro explain --output json`` payload)."""
        return {
            "query": dict(self.query),
            "termination": self.termination,
            "entries": {
                "scanned": self.scanned_entries,
                "pruned": self.pruned_entries,
                "unexplored": self.unexplored_entries,
            },
            "transactions_accessed": self.transactions_accessed,
            "events": [e.to_dict() for e in self.events],
        }


_TERMINATION_TEXT = {
    "exhausted": "scanned or pruned every occupied entry",
    "pruned_tail": "optimistic bound fell below the pessimistic bound "
    "(every remaining entry provably worse)",
    "guarantee_tolerance": "best candidate within the requested tolerance "
    "of every unexplored entry's bound",
    "budget": "early-termination transaction budget exhausted",
    "budget_partial_entry": "early-termination budget exhausted inside an "
    "entry (partial scan)",
}


def render_explain(
    trace: SearchTrace,
    max_events: Optional[int] = None,
    fanout: Optional[Sequence[Dict[str, object]]] = None,
) -> str:
    """Human-readable explain report for one traced query.

    ``fanout`` (optional) is a stitched distributed span tree — the
    ``trace`` payload of a traced request answered through the cluster
    router.  When it contains scatter legs, a per-shard fan-out timing
    section (:func:`repro.obs.distributed.render_fanout`) is appended.
    """
    lines: List[str] = []
    if trace.query:
        described = ", ".join(
            f"{key}={value}" for key, value in trace.query.items()
        )
        lines.append(f"query: {described}")
    lines.append(
        f"entries: {trace.scanned_entries} scanned, "
        f"{trace.pruned_entries} pruned, "
        f"{trace.unexplored_entries} unexplored "
        f"({trace.transactions_accessed} transactions accessed)"
    )
    lines.append(
        f"termination: {trace.termination} — "
        f"{_TERMINATION_TEXT.get(trace.termination, trace.termination)}"
    )
    lines.append(
        "scan trace (rank, supercoordinate, optimistic, pessimistic, action):"
    )
    events = trace.events
    shown = events if max_events is None else events[:max_events]
    for event in shown:
        code = (
            f"0b{event.code:b}" if event.code is not None else "—"
        )
        opt = _fmt(event.optimistic) if event.optimistic is not None else "—"
        if event.action == "scanned":
            pess = (
                _fmt(event.pessimistic_after)
                if event.pessimistic_after is not None
                else "—"
            )
            lines.append(
                f"  {event.rank:>4d}  {code:<14s} opt={opt:<8s} "
                f"pess={pess:<8s} scanned ({event.transactions} txns)"
            )
        elif event.action == "pruned":
            pess = (
                _fmt(event.pessimistic_before)
                if event.pessimistic_before is not None
                else "—"
            )
            lines.append(
                f"  {event.rank:>4d}  {code:<14s} opt={opt:<8s} "
                f"pess={pess:<8s} pruned (bound cannot beat k-th best)"
            )
        elif event.action == "pruned_tail":
            pess = (
                _fmt(event.pessimistic_before)
                if event.pessimistic_before is not None
                else "—"
            )
            lines.append(
                f"  {event.rank:>4d}  {'(tail)':<14s} opt={opt:<8s} "
                f"pess={pess:<8s} pruned {event.count} remaining entries"
            )
        else:  # unexplored
            lines.append(
                f"  {event.rank:>4d}  {'(tail)':<14s} opt={opt:<8s} "
                f"{'':<13s} left {event.count} entries unexplored"
            )
    if max_events is not None and len(events) > max_events:
        lines.append(f"  ... {len(events) - max_events} more events")
    if fanout:
        from repro.obs.distributed import render_fanout

        section = render_fanout(fanout)
        if section:
            lines.append("")
            lines.append(section)
    return "\n".join(lines)
