"""SLO objectives, multi-window burn rates, and error-budget gauges.

A :class:`SloMonitor` turns the raw counters and latency histograms a
server already keeps (:class:`~repro.service.metrics.ServiceMetrics`)
into answers to the operator's actual question — *are we meeting our
objectives, and how fast are we burning the error budget?*

The model is the standard SRE one:

* an **objective** is a target fraction of *good* events — either
  availability (completed vs. server-caused rejections) or latency
  (requests answered within a threshold, read exactly off the existing
  latency histogram's cumulative buckets);
* the **error budget** is the tolerated bad fraction, ``1 - target``,
  over a budget window;
* the **burn rate** over a lookback window is the observed bad fraction
  divided by the budget — burn 1.0 spends the budget exactly at
  window's end, burn 14.4 spends a 30-day budget in ~2 days.

Burn rates are computed over *multiple* windows (default 5 min and
1 h), and an alert fires only when **every** window exceeds the
threshold: the short window gives fast detection, the long window keeps
one latency spike from paging anybody.  Alerts are structured log
lines with their own correlation id, and the budget state is exported
as the ``repro_slo_error_budget_remaining`` gauge (plus per-window
``repro_slo_burn_rate``) so a scrape sees what the logs saw.

The monitor is passive: a server ticks it periodically (an asyncio task
in :class:`~repro.service.server.QueryServer`); each tick reads a
handful of counter values — cost is negligible at any sane interval.
"""

from __future__ import annotations

import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.log import JsonLogger
from repro.obs.registry import MetricRegistry

__all__ = ["SloMonitor", "SloObjective", "DEFAULT_OBJECTIVES"]

#: Retained burn-rate samples per objective (memory bound).
_MAX_HISTORY = 4096

#: Rejection reasons that count against availability.  Client mistakes
#: (``bad_request``) and deliberate drains (``shutting_down``) spend no
#: error budget.
SERVER_FAULT_REASONS = ("overloaded", "timeout", "unavailable", "internal")


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective.

    ``kind`` is ``"availability"`` (good = completed requests, bad =
    server-fault rejections) or ``"latency"`` (good = requests under
    ``threshold_s``; exact when the threshold is one of the latency
    histogram's bucket bounds, else the largest bound below it is
    used).  ``target`` is the good fraction promised (e.g. ``0.999``).
    """

    name: str
    kind: str
    target: float
    threshold_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == "latency" and (
            self.threshold_s is None or self.threshold_s <= 0
        ):
            raise ValueError("latency objectives need a threshold_s > 0")

    @property
    def budget(self) -> float:
        """The tolerated bad fraction (``1 - target``)."""
        return 1.0 - self.target


#: Default objectives: 99% of requests under 250 ms, 99.9% availability.
DEFAULT_OBJECTIVES: Tuple[SloObjective, ...] = (
    SloObjective("latency_p99_250ms", "latency", 0.99, threshold_s=0.25),
    SloObjective("availability", "availability", 0.999),
)


@dataclass
class _Sample:
    at_s: float
    good: float
    total: float


@dataclass
class _ObjectiveState:
    objective: SloObjective
    history: Deque[_Sample] = field(default_factory=deque)
    alerting: bool = False


class SloMonitor:
    """Periodic burn-rate evaluation over a server's metric registry.

    Parameters
    ----------
    registry:
        The registry holding ``repro_requests_completed_total``,
        ``repro_requests_rejected_total`` and
        ``repro_request_latency_seconds`` (a
        :class:`~repro.service.metrics.ServiceMetrics` registry).  The
        monitor registers its own gauges alongside.
    objectives:
        The :class:`SloObjective` set; defaults to
        :data:`DEFAULT_OBJECTIVES`.
    burn_windows_s:
        Lookback windows for burn-rate computation, seconds.
    alert_burn_rate:
        An alert fires when *every* window's burn rate is at or above
        this (14.4 = a 30-day budget gone in 2 days, the classic
        page-worthy rate).
    budget_window_s:
        The rolling window the error-budget gauge is computed over.
    logger:
        Structured logger for alerts (disabled logger by default).
    clock:
        Injectable monotonic clock (tests drive time by hand).
    """

    def __init__(
        self,
        registry: MetricRegistry,
        objectives: Sequence[SloObjective] = DEFAULT_OBJECTIVES,
        burn_windows_s: Sequence[float] = (300.0, 3600.0),
        alert_burn_rate: float = 14.4,
        budget_window_s: float = 30 * 86400.0,
        logger: Optional[JsonLogger] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not objectives:
            raise ValueError("SloMonitor needs at least one objective")
        if not burn_windows_s:
            raise ValueError("SloMonitor needs at least one burn window")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.registry = registry
        self.burn_windows_s = tuple(float(w) for w in sorted(burn_windows_s))
        self.alert_burn_rate = float(alert_burn_rate)
        self.budget_window_s = float(budget_window_s)
        self._log = logger if logger is not None else JsonLogger("slo")
        self._clock = clock
        self._states = [_ObjectiveState(obj) for obj in objectives]
        self._budget_gauge = registry.gauge(
            "repro_slo_error_budget_remaining",
            "Fraction of the SLO error budget left in the rolling window "
            "(1 = untouched, 0 = spent, negative = overspent)",
            labelnames=("objective",),
        )
        self._burn_gauge = registry.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate per lookback window (1.0 spends the "
            "budget exactly over the window)",
            labelnames=("objective", "window"),
        )
        self._alerts_counter = registry.counter(
            "repro_slo_alerts_total",
            "Burn-rate alerts fired (every window above threshold)",
            labelnames=("objective",),
        )
        # Seed a baseline sample so the first real tick has a delta.
        self.tick()

    # ------------------------------------------------------------------
    # Reading good/total off the registry
    # ------------------------------------------------------------------
    def _counter_value(self, name: str) -> float:
        with self.registry._lock:
            family = self.registry._families.get(name)
        if family is None:
            return 0.0
        return sum(
            child.value
            for child in family.children().values()
            if child.kind == "counter"
        )

    def _rejected_value(self) -> float:
        with self.registry._lock:
            family = self.registry._families.get(
                "repro_requests_rejected_total"
            )
        if family is None:
            return 0.0
        total = 0.0
        for labelvalues, child in family.children().items():
            labels = dict(zip(family.labelnames, labelvalues))
            if labels.get("reason") in SERVER_FAULT_REASONS:
                total += child.value
        return total

    def _measure(self, objective: SloObjective) -> Tuple[float, float]:
        """Current lifetime (good, total) event counts for an objective."""
        if objective.kind == "availability":
            good = self._counter_value("repro_requests_completed_total")
            bad = self._rejected_value()
            return good, good + bad
        with self.registry._lock:
            family = self.registry._families.get(
                "repro_request_latency_seconds"
            )
        if family is None or family.kind != "histogram":
            return 0.0, 0.0
        good = 0.0
        total = 0.0
        for child in family.children().values():
            with family.lock:
                counts = list(child._bucket_counts)
                bounds = child._bounds
                count = child._count
            cumulative = 0
            within = 0
            for bound, bucket in zip(bounds, counts):
                cumulative += bucket
                if bound <= objective.threshold_s:
                    within = cumulative
            good += within
            total += count
        return good, total

    # ------------------------------------------------------------------
    @staticmethod
    def _window_rate(
        history: Deque[_Sample], now_s: float, window_s: float
    ) -> Optional[float]:
        """Bad-event fraction over the trailing window, or ``None`` when
        the window saw no events."""
        latest = history[-1]
        baseline = None
        for sample in reversed(history):
            if now_s - sample.at_s >= window_s:
                baseline = sample
                break
        if baseline is None:
            baseline = history[0]
        total = latest.total - baseline.total
        if total <= 0:
            return None
        good = latest.good - baseline.good
        return max(0.0, 1.0 - good / total)

    def tick(self, now_s: Optional[float] = None) -> List[Dict[str, object]]:
        """Sample the registry, update gauges, and fire due alerts.

        Returns one report dict per objective (the shape ``repro top``
        and the server's SLO stats embed).
        """
        now = self._clock() if now_s is None else float(now_s)
        reports: List[Dict[str, object]] = []
        for state in self._states:
            objective = state.objective
            good, total = self._measure(objective)
            state.history.append(_Sample(now, good, total))
            # Keep one sample beyond the longest window so deltas always
            # have a baseline.
            horizon = max(self.budget_window_s, self.burn_windows_s[-1])
            while (
                len(state.history) > 2
                and now - state.history[1].at_s > horizon
            ):
                state.history.popleft()
            # Bound memory regardless of tick rate: beyond the cap the
            # oldest samples go, shrinking the effective budget window
            # to the retained span (burn windows are much shorter and
            # keep full resolution).
            while len(state.history) > _MAX_HISTORY:
                state.history.popleft()

            burn_rates: Dict[str, float] = {}
            all_above = True
            for window_s in self.burn_windows_s:
                rate = self._window_rate(state.history, now, window_s)
                burn = 0.0 if rate is None else rate / objective.budget
                key = _format_window(window_s)
                burn_rates[key] = burn
                self._burn_gauge.labels(
                    objective=objective.name, window=key
                ).set(burn)
                if rate is None or burn < self.alert_burn_rate:
                    all_above = False

            budget_rate = self._window_rate(
                state.history, now, self.budget_window_s
            )
            if budget_rate is None:
                remaining = 1.0
            else:
                remaining = 1.0 - budget_rate / objective.budget
            self._budget_gauge.labels(objective=objective.name).set(remaining)

            if all_above and not state.alerting:
                state.alerting = True
                self._alerts_counter.labels(objective=objective.name).inc()
                self._log.warning(
                    "slo.burn_rate_alert",
                    correlation_id=f"slo-{uuid.uuid4().hex[:12]}",
                    objective=objective.name,
                    kind=objective.kind,
                    target=objective.target,
                    burn_rates=burn_rates,
                    budget_remaining=remaining,
                )
            elif state.alerting and not all_above:
                state.alerting = False
                self._log.info(
                    "slo.burn_rate_resolved",
                    objective=objective.name,
                    burn_rates=burn_rates,
                    budget_remaining=remaining,
                )

            reports.append(
                {
                    "objective": objective.name,
                    "kind": objective.kind,
                    "target": objective.target,
                    "good": good,
                    "total": total,
                    "burn_rates": burn_rates,
                    "budget_remaining": remaining,
                    "alerting": state.alerting,
                }
            )
        self._last_reports = reports
        return reports

    def report(self) -> List[Dict[str, object]]:
        """The most recent tick's per-objective reports."""
        return list(getattr(self, "_last_reports", ()))


def _format_window(window_s: float) -> str:
    if window_s % 3600 == 0:
        return f"{int(window_s // 3600)}h"
    if window_s % 60 == 0:
        return f"{int(window_s // 60)}m"
    return f"{window_s:g}s"
