"""Structured JSON logging with context-propagated correlation ids.

One log line is one JSON object — ``ts`` (unix seconds), ``level``,
``component``, ``event``, ``correlation_id`` (when one is active or bound)
and any extra fields the call site supplies.  The TCP server assigns a
correlation id per request and installs it with
:func:`with_correlation_id`; the batcher and engine log through their own
:class:`JsonLogger` instances, and because the id rides a
:class:`~contextvars.ContextVar`, their lines join up without any of them
passing ids around explicitly.

Loggers are cheap and unconfigured by default (``enabled=False`` drops
every line), so library code can log unconditionally and only the service
entry points decide whether lines reach a stream.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextvars import ContextVar
from typing import IO, Optional

_CORRELATION_ID: "ContextVar[Optional[str]]" = ContextVar(
    "repro_obs_correlation_id", default=None
)

_LEVELS = ("debug", "info", "warning", "error")


def current_correlation_id() -> Optional[str]:
    """The correlation id bound in this context, or ``None``."""
    return _CORRELATION_ID.get()


class with_correlation_id:
    """Context manager binding a correlation id for the current context.

    ::

        with with_correlation_id(request_id):
            await batcher.submit(request)   # every log line carries the id
    """

    __slots__ = ("_value", "_token")

    def __init__(self, value: Optional[str]):
        self._value = value
        self._token = None

    def __enter__(self) -> Optional[str]:
        self._token = _CORRELATION_ID.set(self._value)
        return self._value

    def __exit__(self, *exc_info) -> None:
        _CORRELATION_ID.reset(self._token)


class JsonLogger:
    """Line-oriented JSON logger for one component.

    Parameters
    ----------
    component:
        Name stamped on every line (``"server"``, ``"batcher"``, ...).
    stream:
        Where lines go; defaults to ``sys.stderr``.  A single lock
        serialises writes so concurrent coroutines/threads never
        interleave half-lines.
    enabled:
        When ``False`` (the default) every call is a cheap no-op, so
        library code can log unconditionally.
    min_level:
        Lines below this level are dropped.
    """

    def __init__(
        self,
        component: str,
        stream: Optional[IO[str]] = None,
        enabled: bool = False,
        min_level: str = "debug",
    ):
        if min_level not in _LEVELS:
            raise ValueError(f"unknown log level {min_level!r}")
        self.component = component
        self.enabled = enabled
        self._stream = stream
        self._min_index = _LEVELS.index(min_level)
        self._lock = threading.Lock()

    def child(self, component: str) -> "JsonLogger":
        """A logger for a sub-component sharing this logger's settings."""
        logger = JsonLogger(
            component,
            stream=self._stream,
            enabled=self.enabled,
            min_level=_LEVELS[self._min_index],
        )
        logger._lock = self._lock
        return logger

    def log(self, level: str, event: str, **fields: object) -> None:
        if not self.enabled:
            return
        if _LEVELS.index(level) < self._min_index:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        correlation_id = _CORRELATION_ID.get()
        if correlation_id is not None:
            record["correlation_id"] = correlation_id
        if fields:
            record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            stream.write(line + "\n")

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)
