"""Cross-process trace propagation for the scatter-gather cluster.

A traced request that fans out across shards used to produce N+1
disconnected span trees: the router recorded its scatter, each node
recorded its engine work, and nothing joined them.  This module carries
a compact **trace context** across the wire so the router can stitch
every shard's spans back into the request's own tree.

The context is three fields packed into one small string::

    <trace_id>-<parent_span_id>-<flags>
    4f2a09c31b77de05-9c41aa20-01

* ``trace_id`` — 16 lowercase hex chars identifying the whole trace
  (minted by the first tracer in the chain, stamped on every root span
  so logs/spans from different processes join on one key);
* ``parent_span_id`` — 8 hex chars naming the scatter-leg span the
  receiver's spans will be grafted under (the router pre-mints one id
  per leg, sends it, and stamps the same id on the leg span it records);
* ``flags`` — 2 hex chars; bit 0 is the sampling flag.  A sampled
  context asks the receiver to trace even when the request itself does
  not say ``trace: true``.

On the wire the context travels as the optional ``trace_context`` field
of a query request — a plain JSON member on the NDJSON encoding, and on
the binary wire the request rides a ``FRAME_JSON`` frame (the dense
``FRAME_QUERY`` layout has no slot for it; see
:func:`repro.service.frames.encode_query`).  Responses need no
extension: the shard's span tree returns inline through the existing
``trace`` response field and :func:`graft_remote_trace` re-bases it
into the router's clock domain.

Clock note: ``perf_counter`` domains are per-process, so remote span
times are *relative* truths.  :func:`graft_remote_trace` anchors a
shard's tree at the moment the router sent the leg request; the shard's
internal durations are exact, its absolute offset is network-bound.
"""

from __future__ import annotations

import re
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.trace import Span, Tracer

__all__ = [
    "TraceContext",
    "graft_remote_trace",
    "new_span_id",
    "new_trace_id",
    "render_fanout",
]

#: ``trace_id`` is 16 hex chars, ``parent_span_id`` 8, flags 2.
_CONTEXT_RE = re.compile(r"^([0-9a-f]{16})-([0-9a-f]{8})-([0-9a-f]{2})$")

_FLAG_SAMPLED = 0x01


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-char span id."""
    return uuid.uuid4().hex[:8]


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one scatter leg of a distributed trace."""

    trace_id: str
    parent_span_id: str
    sampled: bool = True

    def encode(self) -> str:
        """The compact wire form (``trace_id-parent_span_id-flags``)."""
        flags = _FLAG_SAMPLED if self.sampled else 0
        return f"{self.trace_id}-{self.parent_span_id}-{flags:02x}"

    @classmethod
    def decode(cls, text: str) -> "TraceContext":
        """Parse the wire form; :class:`ValueError` on anything malformed."""
        if not isinstance(text, str):
            raise ValueError("trace context must be a string")
        match = _CONTEXT_RE.match(text)
        if match is None:
            raise ValueError(
                f"malformed trace context {text!r} (want "
                "16hex-8hex-2hex, lowercase)"
            )
        trace_id, parent_span_id, flags_hex = match.groups()
        flags = int(flags_hex, 16)
        return cls(
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            sampled=bool(flags & _FLAG_SAMPLED),
        )


def graft_remote_trace(
    tracer: Tracer,
    spans: Sequence[Dict[str, object]],
    base_s: float,
    parent: Optional[Span] = None,
    **attributes: object,
) -> List[Span]:
    """Rebuild remote span dicts anchored at ``base_s`` and adopt them.

    ``spans`` is the ``trace`` payload a remote server returned (times in
    ms relative to its first root).  Each rebuilt root gets
    ``attributes`` stamped on (callers label the owning shard) and is
    grafted into ``tracer`` under its currently-open span — or, when
    ``parent`` is given, directly under that span (the router parents
    shard trees under retroactively recorded scatter-leg spans, which
    are never on the tracer's open stack).
    """
    grafted: List[Span] = []
    for payload in spans:
        root = Span.from_dict(payload, base_s)
        for key, value in attributes.items():
            root.set_attribute(key, value)
        if parent is not None:
            parent.children.append(root)
        else:
            tracer.adopt(root)
        grafted.append(root)
    return grafted


# ----------------------------------------------------------------------
# Fan-out rendering (the cluster section of ``repro explain``-style output)
# ----------------------------------------------------------------------
def _iter_named(spans: Sequence[Dict[str, object]], name: str):
    """Depth-first walk yielding every span dict called ``name``."""
    stack = list(spans)
    while stack:
        node = stack.pop(0)
        if node.get("name") == name:
            yield node
        stack[0:0] = list(node.get("children", ()))


def render_fanout(
    spans: Sequence[Dict[str, object]], width: int = 32
) -> str:
    """Per-shard fan-out timing of one stitched trace, as aligned bars.

    Finds every ``router.scatter`` span in the tree and renders one line
    per leg: the shard name, when the leg started relative to the fan-out
    and how long it ran, plus an ASCII gantt bar so a straggler shard is
    visible at a glance.  Returns ``""`` when the tree has no scatter
    spans (a single-node trace).
    """
    legs = list(_iter_named(spans, "router.scatter"))
    if not legs:
        return ""
    starts = [float(leg.get("start_ms", 0.0)) for leg in legs]
    ends = [
        float(leg.get("start_ms", 0.0)) + float(leg.get("duration_ms", 0.0))
        for leg in legs
    ]
    t0, t1 = min(starts), max(ends)
    scale = (t1 - t0) or 1.0
    lines = [f"cluster fan-out ({len(legs)} shard legs):"]
    order = sorted(
        range(len(legs)),
        key=lambda i: str(legs[i].get("attributes", {}).get("shard", "")),
    )
    for i in order:
        leg = legs[i]
        attrs = leg.get("attributes", {})
        shard = str(attrs.get("shard", "?"))
        start = starts[i] - t0
        duration = float(leg.get("duration_ms", 0.0))
        left = int(round(width * (starts[i] - t0) / scale))
        filled = max(1, int(round(width * duration / scale)))
        filled = min(filled, width - left)
        bar = " " * left + "#" * filled
        lines.append(
            f"  {shard:<10s} +{start:7.2f}ms {duration:8.2f}ms "
            f"|{bar:<{width}s}|"
        )
    merges = list(_iter_named(spans, "router.merge"))
    if merges:
        merge_ms = sum(float(m.get("duration_ms", 0.0)) for m in merges)
        lines.append(f"  merge      {merge_ms:8.2f}ms across {len(merges)} pass(es)")
    return "\n".join(lines)
