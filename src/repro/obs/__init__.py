"""Unified observability for the signature-table stack.

The paper's argument is about *internal* behaviour — fraction of the
database pruned, bound convergence, pages touched — so this package makes
every layer report what it did:

* :mod:`repro.obs.registry` — a lock-safe metric registry (counters,
  gauges, histograms, all with labels) with Prometheus-text and JSON
  exposition.  :class:`~repro.service.metrics.ServiceMetrics` is built on
  it; anything else can register metrics alongside.
* :mod:`repro.obs.trace` — hierarchical trace spans with a
  context-propagated recorder.  When no recorder is active every
  instrumentation point degrades to a single context-variable read, so
  the production path pays near-zero cost
  (``benchmarks/bench_obs_overhead.py`` pins this below 5%).
* :mod:`repro.obs.search_trace` — the query-explain facility: a
  :class:`~repro.obs.search_trace.SearchTrace` records, entry by entry,
  why the branch-and-bound scan visited or pruned each signature-table
  entry, and renders it as a human-readable or JSON report
  (CLI ``repro explain``).
* :mod:`repro.obs.log` — structured JSON logging with per-request
  correlation ids flowing from the TCP server through the micro-batcher
  into the engine.
* :mod:`repro.obs.distributed` — cross-process trace propagation: a
  compact trace context carried on scatter legs so router + shard spans
  stitch into one tree.
* :mod:`repro.obs.slo` — SLO objectives, multi-window burn rates,
  error-budget gauges and structured alerts.
* :mod:`repro.obs.profiler` — wall-clock sampling profiler producing
  flamegraph-compatible folded stacks (``repro profile``).

See ``docs/observability.md`` for the full model.
"""

from repro.obs.distributed import (
    TraceContext,
    graft_remote_trace,
    render_fanout,
)
from repro.obs.log import JsonLogger, current_correlation_id, with_correlation_id
from repro.obs.profiler import SamplingProfiler, render_folded
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    parse_prometheus_text,
)
from repro.obs.search_trace import SearchTrace, render_explain
from repro.obs.slo import SloMonitor, SloObjective
from repro.obs.trace import NOOP_SPAN, Span, Tracer, current_tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricRegistry",
    "NOOP_SPAN",
    "SamplingProfiler",
    "SearchTrace",
    "SloMonitor",
    "SloObjective",
    "Span",
    "TraceContext",
    "Tracer",
    "current_correlation_id",
    "current_tracer",
    "graft_remote_trace",
    "parse_prometheus_text",
    "render_explain",
    "render_fanout",
    "render_folded",
    "span",
    "with_correlation_id",
]
