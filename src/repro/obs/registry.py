"""Lock-safe metric registry with Prometheus-text and JSON exposition.

A :class:`MetricRegistry` holds metric *families* — :class:`Counter`,
:class:`Gauge` and :class:`Histogram` — each optionally split by a fixed
set of label names.  Families are created idempotently (asking twice for
the same name returns the same family, asking with a different type or
label set raises), children are created on demand via
:meth:`_MetricFamily.labels`, and every mutation takes the family lock so
the registry is safe to share between the asyncio event loop, the
batcher's executor thread and any background scraper.

Exposition comes in two formats:

* :meth:`MetricRegistry.to_prometheus_text` — the Prometheus text format
  (``# HELP`` / ``# TYPE`` preamble, one sample per line, histogram
  ``_bucket``/``_sum``/``_count`` expansion) ready for a scrape endpoint;
* :meth:`MetricRegistry.to_json` — a JSON-safe nested dict, what the
  service's ``metrics`` control op returns with ``format: "json"``.

:func:`parse_prometheus_text` is the matching (subset) parser; the test
suite and the CI smoke use it to validate that the exposition round-trips.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-flavoured, like Prometheus client).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(
    labelnames: Sequence[str], labelvalues: Sequence[str]
) -> str:
    if not labelnames:
        return ""
    parts = ", ".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + parts + "}"


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, family: "_MetricFamily", labelvalues: Tuple[str, ...]):
        self._family = family
        self._labelvalues = labelvalues
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter (``amount`` must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counters cannot decrease (amount={amount})")
        with self._family.lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        with self._family.lock:
            return self._value

    def _samples(self) -> List[Tuple[str, Tuple[str, ...], float]]:
        return [("", self._labelvalues, self._value)]

    def _json_value(self) -> object:
        return self._value


class Gauge:
    """A value that can go up and down, or be computed by a callback."""

    kind = "gauge"

    def __init__(self, family: "_MetricFamily", labelvalues: Tuple[str, ...]):
        self._family = family
        self._labelvalues = labelvalues
        self._value = 0.0
        self._callback: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to an explicit value."""
        with self._family.lock:
            self._callback = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._family.lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, callback: Callable[[], float]) -> None:
        """Compute the gauge on demand (e.g. live queue depth)."""
        with self._family.lock:
            self._callback = callback

    @property
    def value(self) -> float:
        with self._family.lock:
            if self._callback is not None:
                return float(self._callback())
            return self._value

    def _samples(self) -> List[Tuple[str, Tuple[str, ...], float]]:
        return [("", self._labelvalues, self.value)]

    def _json_value(self) -> object:
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe(v)`` adds ``v`` to every bucket whose upper bound is >= v,
    plus the implicit ``+Inf`` bucket, ``_sum`` and ``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        family: "_MetricFamily",
        labelvalues: Tuple[str, ...],
        buckets: Sequence[float],
    ):
        self._family = family
        self._labelvalues = labelvalues
        self._bounds = tuple(buckets)
        self._bucket_counts = [0] * (len(self._bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._family.lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    return
            self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._family.lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._family.lock:
            return self._sum

    def _samples(self) -> List[Tuple[str, Tuple[str, ...], float]]:
        samples: List[Tuple[str, Tuple[str, ...], float]] = []
        cumulative = 0
        for bound, bucket in zip(self._bounds, self._bucket_counts):
            cumulative += bucket
            samples.append(
                (
                    "_bucket",
                    self._labelvalues + (_format_value(bound),),
                    float(cumulative),
                )
            )
        cumulative += self._bucket_counts[-1]
        samples.append(
            ("_bucket", self._labelvalues + ("+Inf",), float(cumulative))
        )
        samples.append(("_sum", self._labelvalues, self._sum))
        samples.append(("_count", self._labelvalues, float(self._count)))
        return samples

    def _json_value(self) -> object:
        with self._family.lock:
            buckets = {}
            cumulative = 0
            for bound, bucket in zip(self._bounds, self._bucket_counts):
                cumulative += bucket
                buckets[_format_value(bound)] = cumulative
            buckets["+Inf"] = cumulative + self._bucket_counts[-1]
            return {"sum": self._sum, "count": self._count, "buckets": buckets}


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _MetricFamily:
    """All children of one metric name, split by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ):
        self.name = _check_name(name)
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = tuple(buckets) if buckets is not None else None
        self.lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if kind == "histogram":
            bounds = self.buckets if self.buckets is not None else DEFAULT_BUCKETS
            if list(bounds) != sorted(bounds):
                raise ValueError("histogram buckets must be sorted ascending")
            self.buckets = tuple(bounds)
        if not labelnames:
            # Label-less families act directly as their single child.
            self._default = self.labels()

    def labels(self, **labelvalues: str):
        """The child for one combination of label values (created lazily)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} requires labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self.lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self, key, self.buckets)
                else:
                    child = _CHILD_TYPES[self.kind](self, key)
                self._children[key] = child
        return child

    # Label-less convenience: family proxies its single child.
    def __getattr__(self, item):
        if not self.labelnames and item in (
            "inc", "dec", "set", "set_function", "observe",
            "value", "count", "sum",
        ):
            return getattr(self._default, item)
        raise AttributeError(item)

    def children(self) -> Dict[Tuple[str, ...], object]:
        with self.lock:
            return dict(self._children)


class MetricRegistry:
    """A named collection of metric families with exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _MetricFamily]" = {}

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.labelnames}"
                    )
                return family
            family = _MetricFamily(name, kind, help, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> _MetricFamily:
        """Create (or fetch) a counter family."""
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> _MetricFamily:
        """Create (or fetch) a gauge family."""
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> _MetricFamily:
        """Create (or fetch) a histogram family."""
        return self._family(name, "histogram", help, labelnames, buckets)

    def families(self) -> List[_MetricFamily]:
        """All registered families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def to_prometheus_text(self) -> str:
        """Render every metric in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in sorted(family.children().items()):
                for suffix, values, sample in child._samples():
                    if family.kind == "histogram" and suffix == "_bucket":
                        names = family.labelnames + ("le",)
                    else:
                        names = family.labelnames
                    lines.append(
                        f"{family.name}{suffix}"
                        f"{_render_labels(names, values)} "
                        f"{_format_value(sample)}"
                    )
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, object]:
        """JSON-safe dump: name -> {type, help, samples}."""
        payload: Dict[str, object] = {}
        for family in self.families():
            samples = []
            for labelvalues, child in sorted(family.children().items()):
                samples.append(
                    {
                        "labels": dict(zip(family.labelnames, labelvalues)),
                        "value": child._json_value(),
                    }
                )
            payload[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return payload

    # ------------------------------------------------------------------
    # Reconstruction and exact merging (cluster metrics aggregation)
    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "MetricRegistry":
        """Rebuild a registry from its :meth:`to_json` dump.

        The inverse is exact for everything the dump carries: counter
        totals, gauge values (callback gauges come back as the plain
        value they reported), and histogram bucket counts / sum / count
        (the dump's cumulative buckets are de-cumulated back into the
        internal per-bucket representation).  Labelled families that had
        no children are absent from the dump and stay absent here.
        """
        registry = cls()
        _ingest_json(registry, payload, source=None, gauge_label=None)
        return registry

    @classmethod
    def merge(
        cls,
        sources: Dict[str, object],
        gauge_label: str = "source",
    ) -> "MetricRegistry":
        """Exactly merge per-process registries into one.

        ``sources`` maps a source name (e.g. the shard) to either a
        :class:`MetricRegistry` or a :meth:`to_json` dump of one.  The
        merge follows aggregation semantics per metric kind:

        * **counters** — summed sample-wise (same name + labels add up);
        * **histograms** — bucket counts added bucket-wise, ``sum`` and
          ``count`` added, so merged quantile estimates are exactly
          those of one registry that saw every observation (bucket
          bounds must agree across sources);
        * **gauges** — *not* summable (a queue depth of 3 on two shards
          is not a depth of 6), so each sample gains a ``gauge_label``
          label carrying its source name.

        Raises :class:`ValueError` on cross-source schema conflicts:
        same name with different kind, label names, or histogram bucket
        bounds, or a gauge already labelled with ``gauge_label``.
        """
        if not _LABEL_RE.match(gauge_label):
            raise ValueError(f"invalid gauge label {gauge_label!r}")
        merged = cls()
        for source_name, payload in sources.items():
            if isinstance(payload, MetricRegistry):
                payload = payload.to_json()
            if not isinstance(payload, dict):
                raise ValueError(
                    f"source {source_name!r} is not a registry dump"
                )
            _ingest_json(
                merged,
                payload,
                source=str(source_name),
                gauge_label=gauge_label,
            )
        return merged


def _histogram_bounds(buckets: Dict[str, object]) -> List[float]:
    """The finite bucket bounds of one dumped histogram, ascending."""
    bounds = [float(key) for key in buckets if key != "+Inf"]
    return sorted(bounds)


def _ingest_json(
    target: MetricRegistry,
    payload: Dict[str, object],
    source: Optional[str],
    gauge_label: Optional[str],
) -> None:
    """Add one :meth:`MetricRegistry.to_json` dump into ``target``.

    With ``gauge_label`` set, gauge samples are re-labelled by
    ``source`` (merge semantics); with ``None`` they are set verbatim
    (reconstruction semantics).
    """
    for name in sorted(payload):
        entry = payload[name]
        kind = entry.get("type")
        help_text = str(entry.get("help", ""))
        samples = entry.get("samples") or []
        if not samples:
            continue
        first_labels = samples[0].get("labels", {})
        labelnames = tuple(first_labels)
        if kind == "counter":
            family = target.counter(name, help_text, labelnames)
            for sample in samples:
                child = family.labels(**sample.get("labels", {}))
                child.inc(float(sample["value"]))
        elif kind == "gauge":
            if gauge_label is None:
                family = target.gauge(name, help_text, labelnames)
                for sample in samples:
                    child = family.labels(**sample.get("labels", {}))
                    child.set(float(sample["value"]))
            else:
                if gauge_label in labelnames:
                    raise ValueError(
                        f"gauge {name!r} already carries label "
                        f"{gauge_label!r}; cannot re-label by source"
                    )
                family = target.gauge(
                    name, help_text, labelnames + (gauge_label,)
                )
                for sample in samples:
                    labels = dict(sample.get("labels", {}))
                    labels[gauge_label] = source
                    family.labels(**labels).set(float(sample["value"]))
        elif kind == "histogram":
            bounds = _histogram_bounds(samples[0]["value"]["buckets"])
            family = target.histogram(
                name, help_text, labelnames, buckets=bounds
            )
            if list(family.buckets) != bounds:
                raise ValueError(
                    f"histogram {name!r}: bucket bounds differ across "
                    f"sources ({list(family.buckets)} vs {bounds})"
                )
            for sample in samples:
                value = sample["value"]
                buckets = value["buckets"]
                if _histogram_bounds(buckets) != bounds:
                    raise ValueError(
                        f"histogram {name!r}: bucket bounds differ "
                        "between samples"
                    )
                cumulative = [
                    int(buckets[_format_value(bound)]) for bound in bounds
                ]
                counts = [
                    count - (cumulative[index - 1] if index else 0)
                    for index, count in enumerate(cumulative)
                ]
                overflow = int(buckets["+Inf"]) - (
                    cumulative[-1] if cumulative else 0
                )
                counts.append(overflow)
                child = family.labels(**sample.get("labels", {}))
                with family.lock:
                    for index, count in enumerate(counts):
                        child._bucket_counts[index] += count
                    child._sum += float(value["sum"])
                    child._count += int(value["count"])
        else:
            raise ValueError(f"metric {name!r} has unknown kind {kind!r}")


# ----------------------------------------------------------------------
# Exposition parser (test / smoke validation)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(label, value)`` pairs.  Raises
    :class:`ValueError` on malformed lines, type lines with unknown
    metric kinds, or samples whose metric never had a ``# TYPE``.  This
    is a validation-grade subset parser for the test suite and CI smoke,
    not a full scrape client.
    """
    typed: Dict[str, str] = {}
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line {raw!r}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        labels: List[Tuple[str, str]] = []
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in _LABEL_PAIR_RE.finditer(raw_labels):
                value = pair.group(2)
                value = (
                    value.replace(r"\n", "\n")
                    .replace(r"\"", '"')
                    .replace(r"\\", "\\")
                )
                labels.append((pair.group(1), value))
            if re.sub(r"[,\s]", "", _LABEL_PAIR_RE.sub("", raw_labels)):
                raise ValueError(
                    f"line {lineno}: malformed labels {raw_labels!r}"
                )
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: malformed value {raw_value!r}"
                ) from None
        samples[(name, tuple(sorted(labels)))] = value
    return samples
