"""Command-line interface.

The subcommands cover the full life cycle without writing Python:

* ``repro generate`` — synthesise a ``T·.I·.D·`` dataset to ``.npz`` (or
  FIMI text).
* ``repro stats`` — print dataset statistics.
* ``repro build`` — learn a signature scheme and build a table, saved to
  ``.npz``.
* ``repro query`` — run nearest-neighbour / k-NN / range queries against
  a saved table with any built-in similarity function.
* ``repro query-batch`` — run a whole file of queries through the batched
  :class:`~repro.core.engine.QueryEngine`, optionally across worker
  processes (``--output json`` emits one JSON object per query).
* ``repro explain`` — run one query with full observability: an
  entry-by-entry branch-and-bound report (why each signature-table entry
  was scanned or pruned, the bound trajectory, the termination reason)
  plus the span tree (see :mod:`repro.obs`).
* ``repro serve`` — keep a table resident and serve concurrent clients
  over the newline-delimited-JSON TCP protocol with dynamic
  micro-batching (see :mod:`repro.service`); ``--live DIR`` serves a
  mutable WAL-backed live index instead (see :mod:`repro.live`).
* ``repro ingest`` — create a live-index directory and/or durably
  insert transactions into it (reports ingest throughput).
* ``repro compact`` — fold a live index's delta and tombstones into a
  fresh base segment (``--repartition`` re-learns the partition first;
  prints the drift advisor's recommendation).
* ``repro node`` — serve a live-index directory as one cluster shard
  node (owner or warm replica, with synchronous WAL shipping between
  them; see :mod:`repro.cluster`).
* ``repro router`` — front the shard nodes with the consistent-hash
  router: scatter-gather queries, routed mutations, probe-driven
  failover, online rebalance.
* ``repro client`` — talk to a running server: ping, stats, graceful
  shutdown, a query file, a closed-loop load burst, the mutation
  ops (insert/delete/compact/checkpoint) against a live server, or
  ``ring`` against a router.
* ``repro metrics`` — fetch a running server's metric registry in
  Prometheus text or JSON exposition (``--router`` asks a cluster
  router for the exact merge of every node's registry).
* ``repro profile`` — sample a running server's thread stacks into
  flamegraph-compatible folded output (see :mod:`repro.obs.profiler`).
* ``repro top`` — a live terminal dashboard over a server's (or, with
  ``--router``, the whole cluster's) aggregated metrics.

Invoke as ``python -m repro <subcommand> --help``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.core.search import SignatureTableSearcher
from repro.core.similarity import SIMILARITY_FUNCTIONS, get_similarity
from repro.core.table import SignatureTable
from repro.core.partitioning import partition_items
from repro.data.generator import generate, parse_spec
from repro.data.io import read_text, write_text
from repro.data.stats import describe
from repro.data.transaction import TransactionDatabase


def _load_database(path: str) -> TransactionDatabase:
    if path.endswith(".txt"):
        return read_text(path)
    return TransactionDatabase.load(path)


def _cmd_generate(args: argparse.Namespace) -> int:
    config = parse_spec(
        args.spec,
        seed=args.seed,
        num_items=args.num_items,
        num_patterns=args.num_patterns,
        item_skew=args.skew,
    )
    started = time.perf_counter()
    db = generate(config)
    elapsed = time.perf_counter() - started
    if args.output.endswith(".txt"):
        write_text(db, args.output)
    else:
        db.save(args.output)
    print(
        f"wrote {len(db)} transactions ({db.avg_transaction_size:.1f} items "
        f"avg) to {args.output} in {elapsed:.1f}s"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    for key, value in describe(db).as_dict().items():
        if isinstance(value, float):
            print(f"{key:>24s}: {value:.4f}")
        else:
            print(f"{key:>24s}: {value}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    started = time.perf_counter()
    scheme = partition_items(
        db,
        num_signatures=args.signatures,
        activation_threshold=args.activation_threshold,
        min_support=args.min_support,
        rng=args.seed,
    )
    table = SignatureTable.build(db, scheme, page_size=args.page_size)
    elapsed = time.perf_counter() - started
    table.save(args.output)
    print(
        f"built signature table: K={scheme.num_signatures}, "
        f"r={scheme.activation_threshold}, "
        f"{table.num_entries_occupied}/{table.num_entries_total} entries "
        f"occupied, directory {table.memory_bytes() / 1024:.0f} KiB "
        f"({elapsed:.1f}s) -> {args.output}"
    )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import suggest_parameters

    db = _load_database(args.database)
    advice = suggest_parameters(db, memory_budget_bytes=args.memory)
    print(advice)
    print(
        f"\nbuild with:  repro build {args.database} <table.npz> "
        f"-K {advice.num_signatures} -r {advice.activation_threshold}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    db = _load_database(args.database)
    table = SignatureTable.load(args.table)
    searcher = SignatureTableSearcher(table, db)
    similarity = get_similarity(args.similarity)
    target = [int(token) for token in args.items]

    if args.threshold is not None:
        results, stats = searcher.range_query(target, similarity, args.threshold)
        print(f"{len(results)} transactions with {args.similarity} >= {args.threshold}")
        shown = results[: args.k]
    else:
        shown, stats = searcher.knn(
            target,
            similarity,
            k=args.k,
            early_termination=args.early_termination,
        )
    for rank, neighbor in enumerate(shown, start=1):
        items = sorted(db[neighbor.tid])
        print(
            f"#{rank:<3d} tid={neighbor.tid:<8d} "
            f"{args.similarity}={neighbor.similarity:.4f} items={items}"
        )
    print(
        f"-- accessed {stats.transactions_accessed}/{stats.total_transactions} "
        f"transactions (pruned {stats.pruning_efficiency:.1f}%), "
        f"{stats.io.pages_read} pages, {stats.io.seeks} seeks"
    )
    if stats.terminated_early:
        guarantee = (
            "provably optimal"
            if stats.guaranteed_optimal
            else f"best possible remaining {stats.best_possible_remaining:.4f}"
        )
        print(f"-- terminated early: {guarantee}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import SearchTrace, Tracer, render_explain
    from repro.service.protocol import encode_neighbors, encode_search_stats

    db = _load_database(args.database)
    table = SignatureTable.load(args.table)
    searcher = SignatureTableSearcher(table, db)
    similarity = get_similarity(args.similarity)
    target = [int(token) for token in args.items]

    trace = SearchTrace()
    tracer = Tracer(correlation_id="explain")
    with tracer.activate():
        if args.threshold is not None:
            results, stats = searcher.multi_range_query(
                target,
                [(similarity, args.threshold)],
                search_trace=trace,
            )
        else:
            results, stats = searcher.knn(
                target,
                similarity,
                k=args.k,
                early_termination=args.early_termination,
                sort_by=args.sort_by,
                search_trace=trace,
            )

    if args.output == "json":
        print(
            json.dumps(
                {
                    "explain": trace.to_dict(),
                    "spans": tracer.to_dicts(),
                    "results": encode_neighbors(results[: args.k]),
                    "stats": encode_search_stats(stats),
                }
            )
        )
        return 0
    print(render_explain(trace, max_events=args.max_events))
    if results:
        print("top results:")
        for rank, neighbor in enumerate(results[: args.k], start=1):
            print(
                f"  #{rank:<3d} tid={neighbor.tid:<8d} "
                f"{args.similarity}={neighbor.similarity:.4f}"
            )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    scope = "cluster" if args.router else args.scope
    with ServiceClient(args.host, args.port) as client:
        payload = client.metrics(args.format, scope=scope)
    if args.format == "prometheus":
        # Exposition text already ends with a newline.
        sys.stdout.write(str(payload))
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    timeout = 30.0 + (args.duration or 0.0)
    with ServiceClient(args.host, args.port, socket_timeout=timeout) as client:
        payload = client.profile(
            duration_s=args.duration,
            format=args.output,
            hz=args.hz,
            reset=args.reset,
        )
    if args.output == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    profile = str(payload.get("profile", ""))
    if profile:
        print(profile)
    print(
        f"-- {payload.get('samples', 0)} samples over "
        f"{float(payload.get('elapsed_s', 0.0)):.2f}s "
        f"({payload.get('mode', '?')} profiler)",
        file=sys.stderr,
    )
    return 0


def _render_top_frame(metrics: Dict[str, object], scope: str) -> str:
    """One ``repro top`` frame from a metrics-registry JSON dump."""

    def samples(name):
        family = metrics.get(name) or {}
        return family.get("samples") or []

    def total(name) -> float:
        out = 0.0
        for sample in samples(name):
            value = sample.get("value")
            if isinstance(value, dict):
                out += float(value.get("count", 0.0))
            else:
                out += float(value)
        return out

    completed = total("repro_requests_completed_total")
    received = total("repro_requests_received_total")
    lat_sum = 0.0
    lat_count = 0.0
    for sample in samples("repro_request_latency_seconds"):
        value = sample.get("value")
        if isinstance(value, dict):
            lat_sum += float(value.get("sum", 0.0))
            lat_count += float(value.get("count", 0.0))
    mean_ms = 1000.0 * lat_sum / lat_count if lat_count else 0.0
    lines = [
        f"repro top — scope {scope}",
        f"  requests: {completed:.0f} completed / {received:.0f} received"
        f", mean latency {mean_ms:.2f} ms",
    ]
    rejected: Dict[str, float] = {}
    for sample in samples("repro_requests_rejected_total"):
        reason = str(sample.get("labels", {}).get("reason", "?"))
        rejected[reason] = rejected.get(reason, 0.0) + float(sample["value"])
    if rejected:
        shown = ", ".join(
            f"{reason}={count:.0f}"
            for reason, count in sorted(rejected.items())
        )
        lines.append(f"  rejected: {shown}")
    depth = total("repro_queue_depth")
    batches = total("repro_batches_total")
    lines.append(f"  queue depth: {depth:.0f}, batches executed: {batches:.0f}")
    fallbacks = total("repro_kernel_fallbacks_total")
    if fallbacks:
        lines.append(f"  kernel fallbacks: {fallbacks:.0f}")
    budget = samples("repro_slo_error_budget_remaining")
    if budget:
        parts = []
        for sample in sorted(
            budget, key=lambda s: sorted(s.get("labels", {}).items())
        ):
            labels = sample.get("labels", {})
            name = str(labels.get("objective", "?"))
            source = labels.get("source")
            tag = f"{name}@{source}" if source else name
            parts.append(f"{tag} {100.0 * float(sample['value']):.2f}%")
        lines.append("  slo budget remaining: " + ", ".join(parts))
    for sample in samples("repro_cluster_router_requests_total"):
        shard = sample.get("labels", {}).get("shard", "?")
        lines.append(
            f"  shard {shard}: {float(sample['value']):.0f} sub-queries"
        )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    scope = "cluster" if args.router else "self"
    try:
        while True:
            with ServiceClient(args.host, args.port) as client:
                metrics = client.metrics("json", scope=scope)
            frame = _render_top_frame(metrics, scope)
            if args.once:
                print(frame)
                return 0
            # Clear-and-home keeps the dashboard in place like top(1).
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _read_queries(path: str) -> List[List[int]]:
    """Read one query transaction per line (space-separated item ids)."""
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    queries = [
        [int(token) for token in line.split()]
        for line in lines
        if line.strip() and not line.lstrip().startswith("#")
    ]
    if not queries:
        raise ValueError(f"no queries found in {path!r}")
    return queries


def _cmd_query_batch(args: argparse.Namespace) -> int:
    from repro.core.engine import QueryEngine, summarise_stats

    db = _load_database(args.database)
    table = SignatureTable.load(args.table)
    engine = QueryEngine.for_table(table, db, workers=args.workers)
    similarity = get_similarity(args.similarity)
    queries = _read_queries(args.queries)

    tier = getattr(args, "candidate_tier", "exact")
    recall = getattr(args, "target_recall", None)
    started = time.perf_counter()
    if args.threshold is not None:
        results, stats = engine.range_query_batch(
            queries,
            similarity,
            args.threshold,
            candidate_tier=tier,
            target_recall=recall,
        )
    else:
        results, stats = engine.knn_batch(
            queries,
            similarity,
            k=args.k,
            early_termination=args.early_termination,
            candidate_tier=tier,
            target_recall=recall,
        )
    elapsed = time.perf_counter() - started

    if args.output == "json":
        # Machine-consumable NDJSON on stdout (one object per query);
        # the human summary moves to stderr so pipelines stay clean.
        from repro.service.protocol import encode_neighbors

        for index, (query, neighbors, stat) in enumerate(
            zip(queries, results, stats)
        ):
            print(
                json.dumps(
                    {
                        "query": index,
                        "items": query,
                        "results": encode_neighbors(neighbors[: args.k]),
                        "latency_ms": 1000.0 * stat.elapsed_seconds,
                        "entries_scanned": stat.entries_scanned,
                    }
                )
            )
        report = sys.stderr
    else:
        for index, neighbors in enumerate(results):
            if neighbors:
                shown = " ".join(
                    f"{nb.tid}:{nb.similarity:.4f}" for nb in neighbors[: args.k]
                )
            else:
                shown = "(no match)"
            print(f"query {index:<4d} {shown}")
        report = sys.stdout
    summary = summarise_stats(stats)
    print(
        f"-- {summary.num_queries} queries in {elapsed:.2f}s "
        f"({summary.num_queries / elapsed:.1f} queries/sec, "
        f"workers={args.workers})",
        file=report,
    )
    print(
        f"-- accessed {summary.transactions_accessed} transactions "
        f"(mean pruned {summary.mean_pruning_efficiency:.1f}%), "
        f"{summary.io.pages_read} pages, {summary.io.seeks} seeks",
        file=report,
    )
    if summary.terminated_early:
        optimal = "yes" if summary.guaranteed_optimal else "no"
        print(
            f"-- {summary.terminated_early} queries terminated early "
            f"(all provably optimal: {optimal})",
            file=report,
        )
    if tier != "exact":
        recalls = [s.estimated_recall for s in stats if s.estimated_recall]
        mean_recall = sum(recalls) / len(recalls) if recalls else 0.0
        print(
            f"-- {tier} tier: mean estimated recall {mean_recall:.3f}, "
            f"results are approximate",
            file=report,
        )
    return 0


def _cmd_sketch_build(args: argparse.Namespace) -> int:
    from repro.sketch import SketchIndex

    db = _load_database(args.database)
    table = SignatureTable.load(args.table)
    started = time.perf_counter()
    sketch = SketchIndex.build(
        db,
        num_hashes=args.num_hashes,
        num_bands=args.bands,
        rows_per_band=args.rows,
        seed=args.seed,
        design_similarity=args.design_similarity,
    )
    elapsed = time.perf_counter() - started
    table.attach_sketch(sketch)
    output = args.out if args.out is not None else args.table
    table.save(output)
    print(
        f"signed {sketch.num_transactions} transactions with "
        f"{sketch.hasher.num_hashes} hashes "
        f"({sketch.bands.num_bands} bands x {sketch.bands.rows_per_band} rows, "
        f"design similarity {sketch.design_similarity:.3f}) "
        f"in {elapsed:.1f}s -> {output}"
    )
    return 0


def _cmd_sketch_stats(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.sketch import bands_for_recall, collision_probability

    table = SignatureTable.load(args.table)
    sketch = table.sketch
    if sketch is None:
        print(
            "error: table has no sketch column; "
            "run `repro sketch build` first",
            file=sys.stderr,
        )
        return 1
    sizes = sketch.bands.bucket_sizes()
    print(f"{'transactions':>24s}: {sketch.num_transactions}")
    print(f"{'num_hashes':>24s}: {sketch.hasher.num_hashes}")
    print(f"{'num_bands':>24s}: {sketch.bands.num_bands}")
    print(f"{'rows_per_band':>24s}: {sketch.bands.rows_per_band}")
    print(f"{'seed':>24s}: {sketch.hasher.seed}")
    print(f"{'design_similarity':>24s}: {sketch.design_similarity:.4f}")
    print(f"{'mean_bucket_size':>24s}: {float(np.mean(sizes)):.1f}")
    print(f"{'max_bucket_size':>24s}: {int(np.max(sizes))}")
    print(f"{'signature_bytes':>24s}: {sketch.signatures.nbytes}")
    print()
    print("target_recall -> bands probed (expected recall at design sim):")
    for target in (0.8, 0.9, 0.95, 0.99):
        bands = bands_for_recall(
            target,
            sketch.design_similarity,
            sketch.bands.num_bands,
            sketch.bands.rows_per_band,
        )
        expected = collision_probability(
            sketch.design_similarity, bands, sketch.bands.rows_per_band
        )
        print(f"{target:>24.2f}: {bands} ({expected:.3f})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import QueryServer

    live_index = None
    metrics_registry = None
    if args.live is not None:
        from repro.live import LiveIndex, LiveQueryEngine
        from repro.obs import MetricRegistry

        # One registry carries both the service counters and the live
        # index's WAL/compaction gauges, so a single scrape shows both.
        metrics_registry = MetricRegistry()
        injector = None
        if getattr(args, "fault_plan", None):
            from repro.faults import FaultInjector, FaultPlan

            injector = FaultInjector(
                FaultPlan.load(args.fault_plan),
                metrics_registry=metrics_registry,
            )
            print(f"fault injection armed from {args.fault_plan}", flush=True)
        live_index = LiveIndex.recover(
            args.live, metrics_registry=metrics_registry, injector=injector
        )
        engine = LiveQueryEngine(live_index)
        num_transactions = live_index.num_transactions
        universe_size = live_index.scheme.universe_size
        index_info = {"directory": args.live, **live_index.describe()}
        index_info["universe_size"] = universe_size
        source = args.live
    else:
        if args.database is None or args.table is None:
            raise ValueError(
                "serve needs either --live DIR or a database and a table"
            )
        from repro.core.engine import QueryEngine

        db = _load_database(args.database)
        table = SignatureTable.load(args.table)
        engine = QueryEngine.for_table(
            table, db, workers=args.workers, kernel=args.kernel
        )
        num_transactions = len(db)
        index_info = {
            "database": args.database,
            "table": args.table,
            "num_transactions": len(db),
            "universe_size": db.universe_size,
            "num_signatures": table.scheme.num_signatures,
        }
        source = args.database
    logger = None
    if args.log_json:
        from repro.obs import JsonLogger

        logger = JsonLogger("server", enabled=True)
    server = QueryServer(
        engine,
        host=args.host,
        port=args.port,
        logger=logger,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        default_timeout_ms=args.timeout_ms,
        allow_remote_shutdown=not args.no_remote_shutdown,
        index_info=index_info,
        live_index=live_index,
        metrics_registry=metrics_registry,
        wire=args.wire,
        profile_hz=args.profile_hz,
    )

    async def _serve() -> None:
        import signal

        host, port = await server.start()
        mode = "live" if live_index is not None else "frozen"
        print(
            f"serving {source} ({num_transactions} transactions, {mode}) on "
            f"{host}:{port}  [max_batch_size={args.max_batch_size}, "
            f"max_wait_ms={args.max_wait_ms:g}, max_queue={args.max_queue}]",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(server.shutdown())
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await server.wait_shutdown()
        snapshot = server.metrics.snapshot()
        requests = snapshot["requests"]
        print(
            f"drained: {requests['completed']} completed, "
            f"{requests['rejected_overload']} overload rejections, "
            f"{requests['timeouts']} timeouts",
            flush=True,
        )

    try:
        asyncio.run(_serve())
    finally:
        if live_index is not None:
            live_index.close()
    return 0


def _parse_address(text: str) -> tuple:
    host, sep, port = str(text).rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be HOST:PORT, got {text!r}")
    return host, int(port)


def _parse_shard_spec(text: str) -> tuple:
    name, sep, address = str(text).partition("=")
    if not sep or not name:
        raise ValueError(f"shard spec must be NAME=HOST:PORT, got {text!r}")
    return name, _parse_address(address)


def _serve_forever(server, banner: str) -> None:
    """Run an already-configured server until SIGINT/SIGTERM/shutdown."""
    import asyncio
    import signal

    async def _serve() -> None:
        host, port = await server.start()
        print(banner.format(host=host, port=port), flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(server.shutdown())
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await server.wait_shutdown()

    asyncio.run(_serve())


def _cmd_node(args: argparse.Namespace) -> int:
    from repro.cluster import (
        ClusterNodeServer,
        ReplicatedLiveIndex,
        WalShipper,
    )
    from repro.live import LiveIndex, LiveQueryEngine
    from repro.obs import MetricRegistry

    if args.replica and args.role != "owner":
        raise ValueError(
            "--replica names the owner's ship target; replica-role nodes "
            "receive the stream instead"
        )
    registry = MetricRegistry()
    index = LiveIndex.recover(args.directory, metrics_registry=registry)
    live = index
    if args.replica:
        live = ReplicatedLiveIndex(
            index, WalShipper(args.shard, _parse_address(args.replica))
        )
    index_info = {
        "directory": args.directory,
        "shard": args.shard,
        "role": args.role,
        **index.describe(),
    }
    index_info["universe_size"] = index.scheme.universe_size
    server = ClusterNodeServer(
        LiveQueryEngine(index),
        shard=args.shard,
        role=args.role,
        host=args.host,
        port=args.port,
        live_index=live,
        metrics_registry=registry,
        index_info=index_info,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        wire=args.wire,
        profile_hz=args.profile_hz,
    )
    replicated = f" -> replica {args.replica}" if args.replica else ""
    try:
        _serve_forever(
            server,
            f"cluster node shard={args.shard} role={args.role} serving "
            f"{args.directory} ({index.num_transactions} transactions) on "
            "{host}:{port}" + replicated,
        )
    finally:
        index.close()
    return 0


def _cmd_router(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterRouter, RouterServer, ShardSpec

    replicas = {}
    for item in args.replica or []:
        name, address = _parse_shard_spec(item)
        replicas[name] = address
    specs = []
    for item in args.shard:
        name, address = _parse_shard_spec(item)
        specs.append(
            ShardSpec(name, address, replica_address=replicas.pop(name, None))
        )
    if replicas:
        raise ValueError(
            f"--replica for unknown shards: {sorted(replicas)}"
        )
    router = ClusterRouter(
        specs,
        universe_size=args.universe_size,
        vnodes=args.vnodes,
        client_retries=args.retries,
    )
    # A fresh router has an empty tid directory, so rows already on a
    # shard are invisible to it.  Count them as unmapped head-room (the
    # scatter then stays exact for the rows the router *does* map) and
    # tell the operator.
    from repro.service.client import ServiceClient

    for spec in specs:
        try:
            with ServiceClient(*spec.address, retries=1) as probe:
                existing = int(probe.role().get("num_transactions", 0))
        except Exception:
            continue
        if existing:
            router.directory.record_physical(spec.name, existing - 1)
            print(
                f"warning: shard {spec.name} already holds {existing} "
                "transactions the router cannot map; they stay invisible "
                "to cluster queries",
                file=sys.stderr,
            )
    if args.probe_interval is not None:
        router.start_probes(
            interval=args.probe_interval,
            failure_threshold=args.probe_failures,
        )
    server = RouterServer(
        router,
        host=args.host,
        port=args.port,
        index_info={
            "kind": "cluster_router",
            "shards": [spec.name for spec in specs],
        },
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        wire=args.wire,
        profile_hz=args.profile_hz,
    )
    shard_list = ", ".join(
        spec.name + ("+replica" if spec.replica_address else "")
        for spec in specs
    )
    try:
        _serve_forever(
            server,
            f"cluster router over [{shard_list}] on " + "{host}:{port}",
        )
    finally:
        router.close()
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import os

    from repro.live import LiveIndex

    injector = None
    if getattr(args, "fault_plan", None):
        from repro.faults import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan.load(args.fault_plan))
        print(f"fault injection armed from {args.fault_plan}", flush=True)
    exists = os.path.exists(os.path.join(args.directory, "manifest.json"))
    if args.init is not None:
        if exists:
            raise ValueError(
                f"{args.directory!r} already holds a live index; "
                "drop --init to ingest into it"
            )
        db = _load_database(args.init)
        num_signatures = args.signatures
        if num_signatures is None:
            from repro.core.advisor import suggest_parameters

            num_signatures = suggest_parameters(db).num_signatures
        scheme = partition_items(
            db,
            num_signatures=num_signatures,
            activation_threshold=args.activation_threshold,
            rng=args.seed,
        )
        index = LiveIndex.create(
            args.directory,
            db,
            scheme=scheme,
            page_size=args.page_size,
            fsync_interval=args.fsync_interval,
            injector=injector,
        )
        print(
            f"created live index over {len(db)} transactions "
            f"(K={scheme.num_signatures}, r={scheme.activation_threshold}) "
            f"in {args.directory}"
        )
    elif not exists:
        raise ValueError(
            f"no live index at {args.directory!r}; pass --init DATABASE "
            "to create one"
        )
    else:
        index = LiveIndex.recover(
            args.directory,
            fsync_interval=args.fsync_interval,
            injector=injector,
        )
    try:
        if args.transactions is not None:
            rows = _read_queries(args.transactions)
            started = time.perf_counter()
            failures = 0
            for row in rows:
                try:
                    index.insert(row)
                except OSError as exc:
                    failures += 1
                    print(f"insert failed (not applied): {exc}", file=sys.stderr)
            elapsed = time.perf_counter() - started
            if failures:
                print(f"-- {failures}/{len(rows)} inserts failed", file=sys.stderr)
            print(
                f"ingested {len(rows)} transactions in {elapsed:.2f}s "
                f"({len(rows) / max(elapsed, 1e-9):.0f} inserts/sec, "
                f"{index.wal.counters.fsyncs} fsyncs, "
                f"WAL {index.wal.size_bytes} bytes)"
            )
        if args.checkpoint:
            applied = index.checkpoint()
            print(f"checkpointed through seqno {applied}; WAL truncated")
        info = index.describe()
        print(
            f"-- {info['num_transactions']} logical transactions "
            f"({info['delta_size']} in delta, {info['tombstones']} tombstones)"
        )
    finally:
        index.close()
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.live import LiveIndex

    index = LiveIndex.recover(args.directory)
    try:
        drift = index.drift_report()
        if drift is not None:
            print(f"drift advisor: {drift.recommendation}")
        repartition = args.repartition or (
            args.auto_repartition and drift is not None and drift.drifted
        )
        if args.if_needed and not index.should_compact():
            info = index.describe()
            print(
                f"compaction not needed ({info['delta_size']} delta rows, "
                f"{info['tombstones']} tombstones)"
            )
            return 0
        report = index.compact(repartition=repartition)
        print(
            f"compacted: merged {report.merged_inserts} inserts, dropped "
            f"{report.dropped_tombstones} tombstones -> "
            f"{report.new_num_transactions} transactions "
            f"({report.duration_seconds:.2f}s"
            f"{', repartitioned' if report.repartitioned else ''}); "
            f"WAL truncated through seqno {report.applied_seqno}"
        )
    finally:
        index.close()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    try:
        return _run_client_action(args)
    except ServiceError as exc:
        print(f"error: server rejected the request: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_client_action(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient as _RawClient
    from repro.service.client import run_load, wait_ready

    def ServiceClient(host, port):
        return _RawClient(
            host,
            port,
            retries=args.retries,
            deadline=args.deadline,
            wire=args.wire,
        )

    if args.wait_ready is not None:
        if not wait_ready(args.host, args.port, timeout=args.wait_ready):
            print(
                f"error: no server at {args.host}:{args.port} after "
                f"{args.wait_ready:g}s",
                file=sys.stderr,
            )
            return 2

    if args.action == "ping":
        with ServiceClient(args.host, args.port) as client:
            print("pong" if client.ping() else "no answer")
        return 0
    if args.action == "health":
        with ServiceClient(args.host, args.port) as client:
            health = client.health()
        print(json.dumps(health, indent=2, sort_keys=True))
        return 0 if health.get("ready") and not health.get("degraded") else 1
    if args.action == "stats":
        with ServiceClient(args.host, args.port) as client:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0
    if args.action == "ring":
        with ServiceClient(args.host, args.port) as client:
            print(json.dumps(client.ring(), indent=2, sort_keys=True))
        return 0
    if args.action == "shutdown":
        with ServiceClient(args.host, args.port) as client:
            draining = client.shutdown()
        print("server draining" if draining else "shutdown refused")
        return 0 if draining else 1
    if args.action == "insert":
        if not args.items:
            print("error: insert needs --items", file=sys.stderr)
            return 2
        with ServiceClient(args.host, args.port) as client:
            tid = client.insert([int(i) for i in args.items])
        print(f"inserted as logical tid {tid}")
        return 0
    if args.action == "delete":
        if args.tid is None:
            print("error: delete needs --tid", file=sys.stderr)
            return 2
        with ServiceClient(args.host, args.port) as client:
            client.delete(args.tid)
        print(f"deleted logical tid {args.tid}")
        return 0
    if args.action == "compact":
        with ServiceClient(args.host, args.port) as client:
            report = client.compact(repartition=args.repartition)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if args.action == "checkpoint":
        with ServiceClient(args.host, args.port) as client:
            applied = client.checkpoint()
        print(f"checkpointed through seqno {applied}")
        return 0
    if args.action == "query":
        if not args.items:
            print("error: query needs --items", file=sys.stderr)
            return 2
        items = [int(i) for i in args.items]
        tier = getattr(args, "candidate_tier", None)
        recall = getattr(args, "target_recall", None)
        with ServiceClient(args.host, args.port) as client:
            if args.threshold is not None:
                neighbors, stats = client.range_query(
                    items, args.similarity, args.threshold,
                    timeout_ms=args.timeout_ms,
                    candidate_tier=tier, target_recall=recall,
                )
            else:
                neighbors, stats = client.knn(
                    items, args.similarity, k=args.k,
                    timeout_ms=args.timeout_ms,
                    candidate_tier=tier, target_recall=recall,
                )
        for neighbor in neighbors:
            print(f"tid {neighbor.tid}  similarity {neighbor.similarity:.6f}")
        if stats.get("candidate_tier", "exact") != "exact":
            print(
                f"-- {stats['candidate_tier']} tier: "
                f"{stats.get('sketch_candidates', '?')} sketch candidates, "
                f"estimated recall {stats.get('estimated_recall', 0.0):.3f}"
            )
        return 0

    # action == "burst": a closed-loop concurrent load burst.
    if args.queries is not None:
        queries = _read_queries(args.queries)
    else:
        # No query file: sample random transactions from the universe the
        # server reports in its stats payload.
        import random

        with ServiceClient(args.host, args.port) as client:
            index_info = client.stats()["index"]
        universe = int(index_info.get("universe_size", 0))
        if universe <= 0:
            print(
                "error: server reports no universe_size; pass --queries FILE",
                file=sys.stderr,
            )
            return 2
        rng = random.Random(args.seed)
        queries = [
            sorted(rng.sample(range(universe), k=min(universe, 10)))
            for _ in range(min(args.requests, 256))
        ]
    result = run_load(
        args.host,
        args.port,
        queries,
        similarity=args.similarity,
        k=args.k,
        threshold=args.threshold,
        concurrency=args.concurrency,
        total_requests=args.requests,
        timeout_ms=args.timeout_ms,
        retries=args.retries,
        wire=args.wire,
    )
    latencies = result.latencies_ms()
    mid = latencies[len(latencies) // 2] if latencies else float("nan")
    retried = f", {result.retried} retried" if result.retried else ""
    print(
        f"{result.completed}/{len(result.records)} requests ok "
        f"({result.rejected} rejected{retried}) in "
        f"{result.elapsed_seconds:.2f}s — "
        f"{result.qps:.1f} req/s at concurrency {result.concurrency} "
        f"over {result.wire}, ~p50 {mid:.1f} ms"
    )
    return 0 if result.completed else 1


_EXPERIMENTS = {
    "fig6": ("pruning", "hamming"),
    "fig7": ("termination", "hamming"),
    "fig8": ("txnsize", "hamming"),
    "fig9": ("pruning", "match_ratio"),
    "fig10": ("termination", "match_ratio"),
    "fig11": ("txnsize", "match_ratio"),
    "fig12": ("pruning", "cosine"),
    "fig13": ("termination", "cosine"),
    "fig14": ("txnsize", "cosine"),
    "table1": ("inverted", None),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.eval.harness import (
        ExperimentContext,
        run_accuracy_vs_termination,
        run_accuracy_vs_transaction_size,
        run_inverted_access_fractions,
        run_pruning_vs_db_size,
    )

    kind, similarity_name = _EXPERIMENTS[args.experiment]
    overrides = {}
    if args.db_sizes:
        overrides["db_sizes"] = args.db_sizes
        overrides["large_spec"] = f"T10.I6.D{max(args.db_sizes)}"
        overrides["txn_size_db"] = max(args.db_sizes)
    if args.ks:
        overrides["ks"] = args.ks
        overrides["default_k"] = max(args.ks)
    if args.queries:
        overrides["num_queries"] = args.queries
    ctx = ExperimentContext(args.profile, **overrides)

    if kind == "inverted":
        table = run_inverted_access_fractions(ctx)
    else:
        similarity = get_similarity(similarity_name)
        runner = {
            "pruning": run_pruning_vs_db_size,
            "termination": run_accuracy_vs_termination,
            "txnsize": run_accuracy_vs_transaction_size,
        }[kind]
        table = runner(similarity, ctx)
    print(table.to_text())
    if args.output:
        table.save(args.output, args.experiment)
        print(f"saved to {args.output}/{args.experiment}.txt")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Signature-table similarity indexing of market basket data "
        "(Aggarwal, Wolf & Yu, SIGMOD 1999)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_gen = subparsers.add_parser(
        "generate", help="synthesise a T·.I·.D· dataset"
    )
    p_gen.add_argument("spec", help="dataset spec, e.g. T10.I6.D100K")
    p_gen.add_argument("output", help="output path (.npz, or .txt for FIMI)")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--num-items", type=int, default=1000)
    p_gen.add_argument("--num-patterns", type=int, default=2000)
    p_gen.add_argument(
        "--skew",
        type=float,
        default=0.0,
        metavar="S",
        help="Zipf exponent skewing item popularity (0 = the paper's "
        "uniform universe; try 1.0-2.0 for a hot-head catalogue)",
    )
    p_gen.set_defaults(func=_cmd_generate)

    p_stats = subparsers.add_parser("stats", help="print dataset statistics")
    p_stats.add_argument("database", help="dataset path (.npz or .txt)")
    p_stats.set_defaults(func=_cmd_stats)

    p_build = subparsers.add_parser("build", help="build a signature table")
    p_build.add_argument("database", help="dataset path (.npz or .txt)")
    p_build.add_argument("output", help="output table path (.npz)")
    p_build.add_argument(
        "--signatures", "-K", type=int, default=15,
        help="signature cardinality K (default 15)",
    )
    p_build.add_argument("--activation-threshold", "-r", type=int, default=1)
    p_build.add_argument("--min-support", type=float, default=0.0)
    p_build.add_argument("--page-size", type=int, default=64)
    p_build.add_argument("--seed", type=int, default=0)
    p_build.set_defaults(func=_cmd_build)

    p_advise = subparsers.add_parser(
        "advise", help="recommend K and the activation threshold"
    )
    p_advise.add_argument("database", help="dataset path (.npz or .txt)")
    p_advise.add_argument(
        "--memory",
        type=int,
        default=1 << 20,
        help="directory memory budget in bytes (default 1 MiB)",
    )
    p_advise.set_defaults(func=_cmd_advise)

    p_query = subparsers.add_parser(
        "query", help="run a similarity query against a saved table"
    )
    p_query.add_argument("database", help="dataset path (.npz or .txt)")
    p_query.add_argument("table", help="signature-table path (.npz)")
    p_query.add_argument(
        "items", nargs="+", help="target transaction as item ids"
    )
    p_query.add_argument(
        "--similarity",
        "-s",
        default="match_ratio",
        choices=sorted(SIMILARITY_FUNCTIONS),
    )
    p_query.add_argument("--k", type=int, default=5)
    p_query.add_argument(
        "--early-termination",
        type=float,
        default=None,
        help="stop after this fraction of the data (e.g. 0.02)",
    )
    p_query.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="run a range query with this similarity threshold instead of k-NN",
    )
    p_query.set_defaults(func=_cmd_query)

    p_batch = subparsers.add_parser(
        "query-batch",
        help="run a file of queries through the batched engine",
    )
    p_batch.add_argument("database", help="dataset path (.npz or .txt)")
    p_batch.add_argument("table", help="signature-table path (.npz)")
    p_batch.add_argument(
        "queries",
        help="query file: one transaction per line as space-separated item "
        "ids ('-' reads stdin; '#' lines are comments)",
    )
    p_batch.add_argument(
        "--similarity",
        "-s",
        default="match_ratio",
        choices=sorted(SIMILARITY_FUNCTIONS),
    )
    p_batch.add_argument("--k", type=int, default=5)
    p_batch.add_argument(
        "--workers",
        "-j",
        type=int,
        default=1,
        help="worker processes for batch execution (default 1)",
    )
    p_batch.add_argument(
        "--early-termination",
        type=float,
        default=None,
        help="stop each query after this fraction of the data (e.g. 0.02)",
    )
    p_batch.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="run range queries with this similarity threshold instead of k-NN",
    )
    p_batch.add_argument(
        "--output",
        "-o",
        choices=["human", "json"],
        default="human",
        help="result format: human (default) or json (one object per "
        "line on stdout, summary on stderr)",
    )
    p_batch.add_argument(
        "--candidate-tier",
        choices=["exact", "lsh"],
        default="exact",
        help="candidate tier: exact (default) or lsh (sketch prefilter; "
        "table needs `repro sketch build` first)",
    )
    p_batch.add_argument(
        "--target-recall",
        type=float,
        default=None,
        help="recall target for --candidate-tier lsh (default 0.9)",
    )
    p_batch.set_defaults(func=_cmd_query_batch)

    p_sketch = subparsers.add_parser(
        "sketch",
        help="build or inspect the sketch candidate tier of a table",
    )
    sketch_sub = p_sketch.add_subparsers(dest="sketch_action", required=True)
    p_sk_build = sketch_sub.add_parser(
        "build",
        help="sign the database and attach the sketch column to a table",
    )
    p_sk_build.add_argument("database", help="dataset path (.npz or .txt)")
    p_sk_build.add_argument("table", help="signature-table path (.npz)")
    p_sk_build.add_argument(
        "--out",
        default=None,
        help="output table path (default: overwrite the input table)",
    )
    p_sk_build.add_argument("--num-hashes", type=int, default=128)
    p_sk_build.add_argument("--bands", type=int, default=32)
    p_sk_build.add_argument("--rows", type=int, default=2)
    p_sk_build.add_argument("--seed", type=int, default=0)
    p_sk_build.add_argument(
        "--design-similarity",
        type=float,
        default=None,
        help="similarity the band budget is calibrated against "
        "(default: calibrated from the data, skew-aware)",
    )
    p_sk_build.set_defaults(func=_cmd_sketch_build)
    p_sk_stats = sketch_sub.add_parser(
        "stats", help="print a table's sketch parameters and band budgets"
    )
    p_sk_stats.add_argument("table", help="signature-table path (.npz)")
    p_sk_stats.set_defaults(func=_cmd_sketch_stats)

    p_explain = subparsers.add_parser(
        "explain",
        help="run one query with a branch-and-bound explain report",
    )
    p_explain.add_argument("database", help="dataset path (.npz or .txt)")
    p_explain.add_argument("table", help="signature-table path (.npz)")
    p_explain.add_argument(
        "items", nargs="+", help="target transaction as item ids"
    )
    p_explain.add_argument(
        "--similarity",
        "-s",
        default="match_ratio",
        choices=sorted(SIMILARITY_FUNCTIONS),
    )
    p_explain.add_argument("--k", type=int, default=5)
    p_explain.add_argument(
        "--early-termination",
        type=float,
        default=None,
        help="stop after this fraction of the data (e.g. 0.02)",
    )
    p_explain.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="explain a range query with this threshold instead of k-NN",
    )
    p_explain.add_argument(
        "--sort-by",
        default="optimistic",
        choices=["optimistic", "supercoordinate"],
        help="entry scan order for k-NN (default optimistic)",
    )
    p_explain.add_argument(
        "--max-events",
        type=int,
        default=None,
        help="cap the per-entry rows in the human report",
    )
    p_explain.add_argument(
        "--output",
        "-o",
        choices=["human", "json"],
        default="human",
        help="human-readable report (default) or one JSON object with "
        "the explain record, span tree, results and stats",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_metrics = subparsers.add_parser(
        "metrics", help="fetch a running server's metric registry"
    )
    p_metrics.add_argument("--host", default="127.0.0.1")
    p_metrics.add_argument("--port", type=int, default=7807)
    p_metrics.add_argument(
        "--format",
        "-f",
        choices=["json", "prometheus"],
        default="prometheus",
        help="exposition format (default prometheus)",
    )
    p_metrics.add_argument(
        "--scope",
        choices=["self", "cluster"],
        default="self",
        help="'self' is the answering server's registry; 'cluster' asks "
        "a router for the exact merge of every node's (default self)",
    )
    p_metrics.add_argument(
        "--router",
        action="store_true",
        help="shorthand for --scope cluster",
    )
    p_metrics.set_defaults(func=_cmd_metrics)

    p_profile = subparsers.add_parser(
        "profile",
        help="sample a running server's thread stacks (folded output)",
    )
    p_profile.add_argument("--host", default="127.0.0.1")
    p_profile.add_argument("--port", type=int, default=7807)
    p_profile.add_argument(
        "--duration",
        "-d",
        type=float,
        default=None,
        help="one-shot sampling window in seconds (server default 1s; "
        "ignored by a continuous profiler)",
    )
    p_profile.add_argument(
        "--hz",
        type=float,
        default=None,
        help="sampling rate for a one-shot profile (server default)",
    )
    p_profile.add_argument(
        "--reset",
        action="store_true",
        help="clear a continuous profiler's accumulated stacks after "
        "snapshotting",
    )
    p_profile.add_argument(
        "--output",
        "-o",
        choices=["folded", "json"],
        default="folded",
        help="'folded' prints flamegraph-compatible stacks; 'json' the "
        "raw snapshot (default folded)",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_top = subparsers.add_parser(
        "top",
        help="live terminal dashboard over a server's aggregated metrics",
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=7807)
    p_top.add_argument(
        "--router",
        action="store_true",
        help="poll the cluster-wide merged metrics of a router",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh interval in seconds (default 2)",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (no screen clearing)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_serve = subparsers.add_parser(
        "serve",
        help="serve a table to concurrent clients (NDJSON over TCP)",
    )
    p_serve.add_argument(
        "database", nargs="?", default=None,
        help="dataset path (.npz or .txt); omit with --live",
    )
    p_serve.add_argument(
        "table", nargs="?", default=None,
        help="signature-table path (.npz); omit with --live",
    )
    p_serve.add_argument(
        "--live",
        default=None,
        metavar="DIR",
        help="serve a mutable live index from this directory instead of a "
        "frozen table; enables the insert/delete/compact/checkpoint ops "
        "(create the directory with 'repro ingest DIR --init DATABASE')",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7807)
    p_serve.add_argument(
        "--max-batch-size",
        type=int,
        default=32,
        help="flush a micro-batch at this many coalesced requests (default 32)",
    )
    p_serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="flush a micro-batch after its oldest request waited this "
        "long (default 2 ms)",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        help="admission bound on in-flight requests; beyond it the server "
        "rejects with 'overloaded' (default 1024)",
    )
    p_serve.add_argument(
        "--timeout-ms",
        type=float,
        default=30_000.0,
        help="default per-request deadline (default 30000)",
    )
    p_serve.add_argument(
        "--workers",
        "-j",
        type=int,
        default=1,
        help="engine worker processes per batch (default 1)",
    )
    p_serve.add_argument(
        "--no-remote-shutdown",
        action="store_true",
        help="refuse the protocol-level 'shutdown' op",
    )
    p_serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON logs (one object per line, with "
        "correlation ids) on stderr",
    )
    p_serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="inject deterministic faults into the live index's WAL and "
        "checkpoint I/O from this JSON fault plan (testing only; "
        "requires --live)",
    )
    p_serve.add_argument(
        "--wire",
        choices=["auto", "ndjson"],
        default="auto",
        help="wire policy: 'auto' lets clients negotiate the binary "
        "frame protocol, 'ndjson' refuses it (default auto)",
    )
    p_serve.add_argument(
        "--kernel",
        choices=["packed", "python"],
        default="packed",
        help="candidate-scan kernel for frozen tables: vectorized "
        "bitset 'packed' or scalar 'python' (default packed)",
    )
    p_serve.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        metavar="HZ",
        help="run a continuous sampling profiler at this rate; the "
        "'profile' op returns its accumulated folded stacks "
        "(default: off, 'profile' serves one-shot passes)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_node = subparsers.add_parser(
        "node",
        help="serve a live-index directory as one cluster shard node",
    )
    p_node.add_argument("directory", help="live-index directory "
                        "(create with 'repro ingest DIR --init DATABASE')")
    p_node.add_argument(
        "--shard", required=True, help="shard name this node carries"
    )
    p_node.add_argument(
        "--role",
        choices=["owner", "replica"],
        default="owner",
        help="owner accepts routed mutations; replica only applies the "
        "owner's WAL stream until promoted (default owner)",
    )
    p_node.add_argument(
        "--replica",
        default=None,
        metavar="HOST:PORT",
        help="owner-side: ship every WAL record to this replica node "
        "before acknowledging (synchronous replication)",
    )
    p_node.add_argument("--host", default="127.0.0.1")
    p_node.add_argument("--port", type=int, default=7807)
    p_node.add_argument("--max-batch-size", type=int, default=32)
    p_node.add_argument("--max-wait-ms", type=float, default=2.0)
    p_node.add_argument(
        "--wire", choices=["auto", "ndjson"], default="auto"
    )
    p_node.add_argument(
        "--profile-hz", type=float, default=None, metavar="HZ",
        help="continuous sampling profiler rate (default: off)",
    )
    p_node.set_defaults(func=_cmd_node)

    p_router = subparsers.add_parser(
        "router",
        help="front a set of shard nodes with the consistent-hash router",
    )
    p_router.add_argument(
        "--shard",
        action="append",
        required=True,
        metavar="NAME=HOST:PORT",
        help="one shard owner's address (repeat per shard)",
    )
    p_router.add_argument(
        "--replica",
        action="append",
        default=None,
        metavar="NAME=HOST:PORT",
        help="a shard's warm-replica address, enabling probe-driven "
        "failover for it (repeat per replicated shard)",
    )
    p_router.add_argument("--host", default="127.0.0.1")
    p_router.add_argument("--port", type=int, default=7807)
    p_router.add_argument(
        "--universe-size",
        type=int,
        default=None,
        help="item universe of the clustered dataset (introspection only)",
    )
    p_router.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="virtual nodes per shard on the hash ring (default 64)",
    )
    p_router.add_argument(
        "--retries",
        type=int,
        default=3,
        help="router->shard retry budget per forwarded request (default 3)",
    )
    p_router.add_argument(
        "--probe-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="health-probe shard owners this often and fail over to their "
        "replicas (default: probing off)",
    )
    p_router.add_argument(
        "--probe-failures",
        type=int,
        default=2,
        help="consecutive probe failures before promoting (default 2)",
    )
    p_router.add_argument("--max-batch-size", type=int, default=32)
    p_router.add_argument("--max-wait-ms", type=float, default=2.0)
    p_router.add_argument(
        "--wire", choices=["auto", "ndjson"], default="auto"
    )
    p_router.add_argument(
        "--profile-hz", type=float, default=None, metavar="HZ",
        help="continuous sampling profiler rate (default: off)",
    )
    p_router.set_defaults(func=_cmd_router)

    p_ingest = subparsers.add_parser(
        "ingest",
        help="create a live index and/or durably insert transactions",
    )
    p_ingest.add_argument("directory", help="live-index directory")
    p_ingest.add_argument(
        "transactions",
        nargs="?",
        default=None,
        help="transactions to insert, one per line as space-separated item "
        "ids ('-' reads stdin; '#' lines are comments)",
    )
    p_ingest.add_argument(
        "--init",
        default=None,
        metavar="DATABASE",
        help="create the live index over this base dataset first",
    )
    p_ingest.add_argument(
        "--signatures", "-K", type=int, default=None,
        help="signature cardinality K for --init (default: advisor pick)",
    )
    p_ingest.add_argument(
        "--activation-threshold", "-r", type=int, default=1,
        help="activation threshold r for --init (default 1)",
    )
    p_ingest.add_argument(
        "--page-size", type=int, default=64,
        help="transactions per simulated disk page for --init (default 64)",
    )
    p_ingest.add_argument(
        "--seed", type=int, default=0, help="partitioning seed for --init"
    )
    p_ingest.add_argument(
        "--fsync-interval",
        type=int,
        default=1,
        help="fsync the WAL every N inserts (default 1 = every insert)",
    )
    p_ingest.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a checkpoint and truncate the WAL after ingesting",
    )
    p_ingest.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="inject deterministic faults into WAL and checkpoint I/O "
        "from this JSON fault plan (testing only)",
    )
    p_ingest.set_defaults(func=_cmd_ingest)

    p_compact = subparsers.add_parser(
        "compact",
        help="fold a live index's delta and tombstones into the base",
    )
    p_compact.add_argument("directory", help="live-index directory")
    p_compact.add_argument(
        "--repartition",
        action="store_true",
        help="re-learn the signature partition from the merged data",
    )
    p_compact.add_argument(
        "--auto-repartition",
        action="store_true",
        help="repartition only if the drift advisor recommends it",
    )
    p_compact.add_argument(
        "--if-needed",
        action="store_true",
        help="compact only when the compaction policy triggers",
    )
    p_compact.set_defaults(func=_cmd_compact)

    p_client = subparsers.add_parser(
        "client", help="talk to a running repro server"
    )
    p_client.add_argument(
        "action",
        choices=[
            "ping", "health", "stats", "shutdown", "burst", "query",
            "insert", "delete", "compact", "checkpoint", "ring",
        ],
        help="ping/health/stats/shutdown, a single 'query', a closed-loop "
        "'burst' of queries, a mutation against a live server, or 'ring' "
        "for a cluster router's topology",
    )
    p_client.add_argument(
        "--items",
        nargs="+",
        default=None,
        help="item ids for the insert action",
    )
    p_client.add_argument(
        "--tid",
        type=int,
        default=None,
        help="logical tid for the delete action",
    )
    p_client.add_argument(
        "--repartition",
        action="store_true",
        help="ask the server to repartition during the compact action",
    )
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7807)
    p_client.add_argument(
        "--wait-ready",
        type=float,
        nargs="?",
        const=10.0,
        default=None,
        metavar="SECONDS",
        help="poll until the server answers ping before acting "
        "(bare flag waits up to 10s)",
    )
    p_client.add_argument(
        "--queries",
        default=None,
        help="query file for burst (one transaction per line; default: "
        "random items over the server's universe)",
    )
    p_client.add_argument(
        "--requests", type=int, default=64, help="burst size (default 64)"
    )
    p_client.add_argument(
        "--concurrency",
        "-c",
        type=int,
        default=8,
        help="concurrent closed-loop clients for burst (default 8)",
    )
    p_client.add_argument(
        "--similarity",
        "-s",
        default="match_ratio",
        choices=sorted(SIMILARITY_FUNCTIONS),
    )
    p_client.add_argument("--k", type=int, default=5)
    p_client.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="send range queries with this threshold instead of k-NN",
    )
    p_client.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="per-request deadline forwarded to the server",
    )
    p_client.add_argument(
        "--candidate-tier",
        choices=["exact", "lsh"],
        default=None,
        help="candidate tier for the query action (lsh needs a "
        "sketch-enabled server)",
    )
    p_client.add_argument(
        "--target-recall",
        type=float,
        default=None,
        help="recall target for --candidate-tier lsh (default 0.9)",
    )
    p_client.add_argument(
        "--seed", type=int, default=0, help="seed for generated burst queries"
    )
    p_client.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry retryable failures (overloaded/unavailable, dropped "
        "connections) up to this many times with jittered exponential "
        "backoff (default 0 = no retries)",
    )
    p_client.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="overall per-call deadline budget; retries never sleep past "
        "it (default: unbounded)",
    )
    p_client.add_argument(
        "--wire",
        choices=["auto", "binary", "ndjson"],
        default="auto",
        help="wire protocol: 'binary' demands the frame protocol, "
        "'ndjson' skips negotiation, 'auto' tries binary and falls "
        "back (default auto)",
    )
    p_client.set_defaults(func=_cmd_client)

    p_experiment = subparsers.add_parser(
        "experiment",
        help="reproduce one of the paper's figures/tables",
    )
    p_experiment.add_argument(
        "experiment", choices=sorted(_EXPERIMENTS, key=lambda e: (len(e), e))
    )
    p_experiment.add_argument(
        "--profile", default=None, help="quick (default) or paper"
    )
    p_experiment.add_argument(
        "--db-sizes", type=int, nargs="+", default=None,
        help="override the profile's database-size sweep",
    )
    p_experiment.add_argument(
        "--ks", type=int, nargs="+", default=None,
        help="override the profile's K sweep",
    )
    p_experiment.add_argument(
        "--queries", type=int, default=None, help="queries per point"
    )
    p_experiment.add_argument(
        "--output", default=None, help="directory to save the result table"
    )
    p_experiment.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; not an error.
        return 0
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
