"""Signature tables for similarity indexing of market basket data.

A faithful, production-quality reproduction of

    Charu C. Aggarwal, Joel L. Wolf, Philip S. Yu.
    "A New Method for Similarity Indexing of Market Basket Data."
    SIGMOD 1999.

Quickstart
----------
>>> import repro
>>> db = repro.generate("T10.I6.D5K", seed=7)
>>> index = repro.build_index(db, num_signatures=12)
>>> target = db[0]
>>> neighbors, stats = index.knn(target, repro.MatchRatioSimilarity(), k=5)
>>> stats.pruning_efficiency > 0
True

The index is built once and supports *any* similarity function satisfying
the paper's monotonicity contract at query time — hamming distance,
match/hamming ratio, cosine, Jaccard, Dice, or your own
:class:`~repro.core.similarity.CustomSimilarity`.
"""

from repro.baselines import (
    InvertedIndex,
    LinearScanIndex,
    MinHasher,
    MinHashLSHIndex,
)
from repro.core import (
    BatchBoundCalculator,
    BatchKey,
    BatchSummary,
    BoundCalculator,
    ContainmentSimilarity,
    CosineSimilarity,
    CustomSimilarity,
    DiceSimilarity,
    HammingSimilarity,
    IndexAdvice,
    IndexBuildReport,
    JaccardSimilarity,
    MatchCountSimilarity,
    MatchRatioSimilarity,
    Neighbor,
    PartitioningError,
    PreparedQuery,
    QueryEngine,
    QueryPlan,
    SearchStats,
    ShardedQueryEngine,
    SignatureScheme,
    SignatureTable,
    ShardedSignatureIndex,
    SignatureTableSearcher,
    SimilarityFunction,
    UnboundSimilarityError,
    WeightedLinearSimilarity,
    balanced_support_partition,
    batch_key,
    build_index,
    correlation_graph,
    get_similarity,
    hamming_distance,
    matches,
    partition_items,
    max_k_for_memory,
    random_partition,
    similarity_key,
    single_linkage_partition,
    suggest_parameters,
    summarise_stats,
    verify_monotonicity,
)
from repro.core.builder import MarketBasketIndex
from repro.data import (
    DatasetStats,
    GeneratorConfig,
    MarketBasketGenerator,
    TransactionDatabase,
    describe,
    format_spec,
    generate,
    parse_spec,
)
from repro.mining import (
    AssociationRule,
    PairSupports,
    StreamingSupportCounter,
    apriori,
    association_rules,
    count_pair_supports,
)
from repro.sketch import (
    BandIndex,
    SketchIndex,
    SketchProbe,
    SuperMinHasher,
)
from repro.service import (
    MicroBatcher,
    QueryServer,
    ServiceClient,
    ServiceError,
    ServiceMetrics,
    serve_in_background,
)
from repro.storage import BufferPool, BufferStats, DiskModel, IOCounters, PagedStore

__version__ = "1.0.0"

__all__ = [
    # data
    "TransactionDatabase",
    "GeneratorConfig",
    "MarketBasketGenerator",
    "generate",
    "parse_spec",
    "format_spec",
    "DatasetStats",
    "describe",
    # mining
    "apriori",
    "association_rules",
    "AssociationRule",
    "count_pair_supports",
    "PairSupports",
    "StreamingSupportCounter",
    # similarity
    "SimilarityFunction",
    "HammingSimilarity",
    "MatchRatioSimilarity",
    "CosineSimilarity",
    "JaccardSimilarity",
    "DiceSimilarity",
    "ContainmentSimilarity",
    "MatchCountSimilarity",
    "WeightedLinearSimilarity",
    "CustomSimilarity",
    "UnboundSimilarityError",
    "get_similarity",
    "matches",
    "hamming_distance",
    "verify_monotonicity",
    # core index
    "SignatureScheme",
    "SignatureTable",
    "SignatureTableSearcher",
    "ShardedSignatureIndex",
    "MarketBasketIndex",
    "build_index",
    "IndexBuildReport",
    "IndexAdvice",
    "suggest_parameters",
    "max_k_for_memory",
    "Neighbor",
    "QueryPlan",
    "PreparedQuery",
    "SearchStats",
    "QueryEngine",
    "ShardedQueryEngine",
    "BatchSummary",
    "BatchKey",
    "batch_key",
    "similarity_key",
    "summarise_stats",
    "BoundCalculator",
    "BatchBoundCalculator",
    "partition_items",
    "correlation_graph",
    "single_linkage_partition",
    "random_partition",
    "balanced_support_partition",
    "PartitioningError",
    # baselines
    "LinearScanIndex",
    "InvertedIndex",
    "MinHasher",
    "MinHashLSHIndex",
    # storage
    "PagedStore",
    "DiskModel",
    "IOCounters",
    "BufferPool",
    "BufferStats",
    # sketch tier
    "SuperMinHasher",
    "BandIndex",
    "SketchIndex",
    "SketchProbe",
    # serving
    "QueryServer",
    "MicroBatcher",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "serve_in_background",
]
