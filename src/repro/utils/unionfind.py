"""Disjoint-set forest (union-find) with per-component mass accounting.

The single-linkage clustering of Section 3.1 of the paper is implemented as
Kruskal's algorithm: edges are added in order of increasing distance and a
connected component is *extracted* as a signature as soon as its mass (the
sum of the supports of its member items) exceeds the critical mass.  This
union-find therefore tracks, per component root:

* the component size,
* the component mass (sum of user-supplied element masses), and
* whether the component has been *retired* (extracted); unions touching a
  retired component are ignored, which is exactly the paper's "remove the
  component from the graph" step without mutating edge lists.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence


class UnionFind:
    """Union-find over ``n`` elements with path compression and union by size.

    Parameters
    ----------
    n:
        Number of elements, labelled ``0 .. n-1``.
    masses:
        Optional per-element mass.  Component mass is maintained under
        unions and is queryable via :meth:`mass`.  Defaults to ``1.0`` per
        element so that mass equals size.
    """

    def __init__(self, n: int, masses: Optional[Sequence[float]] = None) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if masses is not None and len(masses) != n:
            raise ValueError(
                f"masses has length {len(masses)}, expected {n}"
            )
        self._parent: List[int] = list(range(n))
        self._size: List[int] = [1] * n
        self._mass: List[float] = (
            [1.0] * n if masses is None else [float(m) for m in masses]
        )
        self._retired: List[bool] = [False] * n
        self._n = n

    def __len__(self) -> int:
        return self._n

    def find(self, x: int) -> int:
        """Return the root of ``x``'s component (with path compression)."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def connected(self, x: int, y: int) -> bool:
        """Return whether ``x`` and ``y`` are in the same component."""
        return self.find(x) == self.find(y)

    def union(self, x: int, y: int) -> bool:
        """Merge the components of ``x`` and ``y``.

        Returns ``True`` if a merge happened, ``False`` if the elements were
        already connected or either component has been retired.
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry or self._retired[rx] or self._retired[ry]:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._mass[rx] += self._mass[ry]
        return True

    def size(self, x: int) -> int:
        """Return the number of elements in ``x``'s component."""
        return self._size[self.find(x)]

    def mass(self, x: int) -> float:
        """Return the total mass of ``x``'s component."""
        return self._mass[self.find(x)]

    def retire(self, x: int) -> None:
        """Retire ``x``'s component: future unions touching it are no-ops."""
        self._retired[self.find(x)] = True

    def is_retired(self, x: int) -> bool:
        """Return whether ``x``'s component has been retired."""
        return self._retired[self.find(x)]

    def members(self, x: int) -> List[int]:
        """Return all elements in ``x``'s component (O(n) scan)."""
        root = self.find(x)
        return [i for i in range(self._n) if self.find(i) == root]

    def components(self, of: Optional[Iterable[int]] = None) -> Iterator[List[int]]:
        """Yield components as lists of member elements.

        Parameters
        ----------
        of:
            If given, only components containing at least one of these
            elements are yielded.
        """
        groups: dict = {}
        for i in range(self._n):
            groups.setdefault(self.find(i), []).append(i)
        if of is None:
            yield from groups.values()
        else:
            wanted = {self.find(i) for i in of}
            for root, members in groups.items():
                if root in wanted:
                    yield members

    def num_components(self) -> int:
        """Return the number of distinct components (including retired)."""
        return len({self.find(i) for i in range(self._n)})
