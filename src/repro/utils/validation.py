"""Input-validation helpers.

Public API entry points validate their arguments eagerly with these helpers
so misuse fails with a clear message at the call site instead of as a NumPy
broadcasting error three layers down.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Tuple, Type, Union


def check_type(
    value: Any,
    types: Union[Type, Tuple[Type, ...]],
    name: str,
) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value


def check_positive(value: Real, name: str, strict: bool = True) -> Real:
    """Raise :class:`ValueError` unless ``value`` is positive.

    With ``strict=False`` zero is allowed.
    """
    if not isinstance(value, Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: Real, name: str) -> Real:
    """Raise :class:`ValueError` unless ``0 <= value <= 1``."""
    if not isinstance(value, Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= float(value) <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(value: Real, name: str) -> Real:
    """Raise :class:`ValueError` unless ``0 < value <= 1``."""
    if not isinstance(value, Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 < float(value) <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value
