"""Small shared utilities used across the library.

The utilities here are deliberately dependency-free (NumPy only) and have no
knowledge of signature tables or market baskets: a disjoint-set forest for
the single-linkage clustering, RNG plumbing so every stochastic component of
the library is reproducible from a single seed, and validation helpers that
turn malformed user input into early, descriptive errors.
"""

from repro.utils.rng import derive_rng, ensure_rng, spawn_seeds
from repro.utils.unionfind import UnionFind
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "UnionFind",
    "derive_rng",
    "ensure_rng",
    "spawn_seeds",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_type",
]
