"""Random-number-generator plumbing.

Every stochastic component of the library (data generator, random
partitioning baseline, MinHash, experiment harness) accepts either a seed or
a :class:`numpy.random.Generator`.  These helpers normalise that input and
derive independent child streams so that a single experiment seed pins down
the entire pipeline without the components sharing (and perturbing) one
stream.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a fresh nondeterministic generator, an ``int`` is used
    as a seed, and an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng).__name__}"
    )


def derive_rng(rng: RngLike, label: str) -> np.random.Generator:
    """Derive an independent child generator keyed by ``label``.

    When ``rng`` is an integer seed the child is a deterministic function of
    ``(seed, label)`` so the same label always yields the same stream; when
    ``rng`` is already a generator the child is spawned from it.
    """
    if isinstance(rng, (int, np.integer)):
        # Fold the label into the seed sequence so distinct labels give
        # statistically independent deterministic streams.
        entropy = [int(rng)] + [ord(c) for c in label]
        return np.random.default_rng(np.random.SeedSequence(entropy))
    generator = ensure_rng(rng)
    return generator.spawn(1)[0]


def spawn_seeds(rng: RngLike, count: int) -> List[int]:
    """Return ``count`` independent 63-bit seeds drawn from ``rng``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    generator = ensure_rng(rng)
    return [int(s) for s in generator.integers(0, 2**63 - 1, size=count)]
