"""``repro.sketch`` — the sketch-accelerated candidate tier.

SuperMinHash-style transaction signatures (:class:`SuperMinHasher`), LSH
banding over them (:class:`BandIndex`), and the combined
:class:`SketchIndex` the query engine probes when a request selects
``candidate_tier="lsh"``.  See ``docs/sketch.md`` for the tier design
and the recall / access-fraction tradeoff.
"""

from repro.sketch.bands import BandIndex, bands_for_recall, collision_probability
from repro.sketch.index import (
    DEFAULT_TARGET_RECALL,
    SketchIndex,
    SketchProbe,
    calibrate_design_similarity,
)
from repro.sketch.signer import SIGNATURE_SENTINEL, SuperMinHasher

__all__ = [
    "BandIndex",
    "DEFAULT_TARGET_RECALL",
    "SIGNATURE_SENTINEL",
    "SketchIndex",
    "SketchProbe",
    "SuperMinHasher",
    "bands_for_recall",
    "calibrate_design_similarity",
    "collision_probability",
]
