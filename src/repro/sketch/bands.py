"""LSH banding over SuperMinHash signatures.

A :class:`BandIndex` slices each ``(num_hashes,)`` signature into
``num_bands`` contiguous bands of ``rows_per_band`` slots and buckets
transactions by the byte pattern of each band.  Probing the first ``b``
bands of a query signature returns every transaction sharing at least
one of those band patterns — the classic ``1 - (1 - s**r)**b`` S-curve.

The band *shape* ``(num_bands, rows_per_band)`` is fixed at build time;
``target_recall`` selects only *how many* of the bands a query probes.
Probing more bands can only add buckets, so candidate sets are supersets
under increasing ``target_recall`` by construction — the monotonicity
the differential suites pin down.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["BandIndex", "collision_probability", "bands_for_recall"]


def collision_probability(
    similarity: float, num_bands: int, rows_per_band: int
) -> float:
    """Probability that two sets with Jaccard ``similarity`` share at least
    one of the first ``num_bands`` bands: ``1 - (1 - s**r)**b``."""
    s = min(max(float(similarity), 0.0), 1.0)
    return float(1.0 - (1.0 - s**rows_per_band) ** num_bands)


def bands_for_recall(
    target_recall: float,
    design_similarity: float,
    num_bands: int,
    rows_per_band: int,
) -> int:
    """Smallest number of bands whose S-curve reaches ``target_recall`` at
    the design similarity; capped at ``num_bands`` (best effort) when the
    target is unreachable with the built shape."""
    if not 0.0 < target_recall <= 1.0:
        raise ValueError(f"target_recall must be in (0, 1], got {target_recall}")
    for bands in range(1, num_bands + 1):
        if collision_probability(design_similarity, bands, rows_per_band) >= target_recall:
            return bands
    return num_bands


class BandIndex:
    """Bucketed LSH bands over a packed signature matrix.

    Parameters
    ----------
    signatures:
        ``(n, num_hashes)`` uint32 signature matrix, row-indexed by tid.
    num_bands, rows_per_band:
        Band shape; ``num_bands * rows_per_band`` must not exceed the
        signature width.
    """

    def __init__(
        self, signatures: np.ndarray, num_bands: int, rows_per_band: int
    ) -> None:
        check_positive(num_bands, "num_bands")
        check_positive(rows_per_band, "rows_per_band")
        signatures = np.ascontiguousarray(signatures, dtype=np.uint32)
        if signatures.ndim != 2:
            raise ValueError(f"signatures must be 2-D, got shape {signatures.shape}")
        if num_bands * rows_per_band > signatures.shape[1]:
            raise ValueError(
                f"band shape {num_bands}x{rows_per_band} exceeds signature "
                f"width {signatures.shape[1]}"
            )
        self.num_bands = int(num_bands)
        self.rows_per_band = int(rows_per_band)
        self.num_transactions = int(signatures.shape[0])
        self._buckets = [
            self._group_band(signatures, band) for band in range(self.num_bands)
        ]

    def _group_band(self, signatures: np.ndarray, band: int) -> dict:
        lo = band * self.rows_per_band
        view = np.ascontiguousarray(signatures[:, lo : lo + self.rows_per_band])
        if view.shape[0] == 0:
            return {}
        keys = view.view(np.dtype((np.void, view.dtype.itemsize * self.rows_per_band)))
        keys = keys.reshape(-1)
        uniq, inverse = np.unique(keys, return_inverse=True)
        order = np.argsort(inverse, kind="stable").astype(np.int64)
        counts = np.bincount(inverse, minlength=len(uniq))
        groups = np.split(order, np.cumsum(counts)[:-1])
        return {uniq[i].tobytes(): groups[i] for i in range(len(uniq))}

    def candidates(
        self, signature: np.ndarray, bands: Optional[int] = None
    ) -> np.ndarray:
        """Sorted unique tids sharing at least one of the first ``bands``
        band patterns with ``signature`` (all bands when ``None``)."""
        probe = self.num_bands if bands is None else int(bands)
        if not 1 <= probe <= self.num_bands:
            raise ValueError(f"bands must be in [1, {self.num_bands}], got {probe}")
        sig = np.ascontiguousarray(np.asarray(signature, dtype=np.uint32))
        if sig.ndim != 1 or sig.size < self.num_bands * self.rows_per_band:
            raise ValueError(
                f"signature of width >= {self.num_bands * self.rows_per_band} "
                f"required, got shape {sig.shape}"
            )
        hits = []
        for band in range(probe):
            lo = band * self.rows_per_band
            bucket = self._buckets[band].get(sig[lo : lo + self.rows_per_band].tobytes())
            if bucket is not None:
                hits.append(bucket)
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))

    def bucket_sizes(self) -> np.ndarray:
        """Sizes of every bucket across all bands (occupancy diagnostics)."""
        sizes = [len(group) for bucket in self._buckets for group in bucket.values()]
        return np.asarray(sizes, dtype=np.int64)
