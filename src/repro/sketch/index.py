"""The sketch candidate tier: signatures + bands behind one handle.

A :class:`SketchIndex` bundles the :class:`~repro.sketch.signer.SuperMinHasher`
that produced a signature matrix with the :class:`~repro.sketch.bands.BandIndex`
built over it, plus the *design similarity* the band budget is calibrated
against.  The query engine talks only to this object: ``probe`` turns a
target transaction and a ``target_recall`` into a candidate tid set, and
``estimate_result_recall`` converts a finished result list back into the
estimated-recall figure reported on ``SearchStats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.data.transaction import TransactionDatabase
from repro.obs.trace import span
from repro.sketch.bands import BandIndex, bands_for_recall, collision_probability
from repro.sketch.signer import SuperMinHasher

__all__ = [
    "DEFAULT_TARGET_RECALL",
    "SketchIndex",
    "SketchProbe",
    "calibrate_design_similarity",
]

#: Recall target assumed when the caller picks the lsh tier without one.
DEFAULT_TARGET_RECALL = 0.9

_MIN_DESIGN_SIMILARITY = 0.1
_MAX_DESIGN_SIMILARITY = 0.9


def calibrate_design_similarity(
    signatures: np.ndarray, sample: int = 64, quantile: float = 0.25
) -> float:
    """Skew-aware design-similarity calibration.

    Samples up to ``sample`` evenly spaced rows, estimates each sample's
    best sketch-Jaccard against the rest of the matrix, and returns a low
    quantile of those nearest-neighbour similarities.  Under Zipf-skewed
    universes near neighbours are more similar, the quantile comes out
    higher, and fewer bands need probing for the same recall target —
    this is where the skew-aware band budget comes from.
    """
    n = int(signatures.shape[0])
    if n < 2:
        return 0.5
    idx = np.unique(np.linspace(0, n - 1, min(int(sample), n)).astype(np.int64))
    best = np.empty(idx.size, dtype=np.float64)
    for pos, row in enumerate(idx):
        agree = (signatures == signatures[row]).mean(axis=1)
        agree[row] = -1.0
        best[pos] = agree.max()
    value = float(np.quantile(best, quantile))
    return min(max(value, _MIN_DESIGN_SIMILARITY), _MAX_DESIGN_SIMILARITY)


@dataclass(frozen=True)
class SketchProbe:
    """Outcome of one LSH probe: the candidate tids plus the band budget
    and S-curve recall estimate that produced them."""

    candidates: np.ndarray
    bands_probed: int
    target_recall: float
    expected_recall: float
    signature: np.ndarray

    def mask(self, num_transactions: int) -> np.ndarray:
        """Boolean candidate mask over ``num_transactions`` tids."""
        mask = np.zeros(num_transactions, dtype=bool)
        if self.candidates.size:
            mask[self.candidates] = True
        return mask


class SketchIndex:
    """SuperMinHash signatures + LSH bands over one transaction database.

    Build with :meth:`build` (signs the database) or :meth:`from_arrays`
    (rehydrates a persisted signature matrix; bands are rebuilt — they are
    derived state, never serialised).
    """

    def __init__(
        self,
        hasher: SuperMinHasher,
        signatures: np.ndarray,
        num_bands: int = 32,
        rows_per_band: int = 2,
        design_similarity: float = 0.5,
    ) -> None:
        signatures = np.ascontiguousarray(signatures, dtype=np.uint32)
        if signatures.ndim != 2 or signatures.shape[1] != hasher.num_hashes:
            raise ValueError(
                f"signatures of shape (n, {hasher.num_hashes}) required, "
                f"got {signatures.shape}"
            )
        if not 0.0 < design_similarity < 1.0:
            raise ValueError(
                f"design_similarity must be in (0, 1), got {design_similarity}"
            )
        self.hasher = hasher
        self.signatures = signatures
        self.design_similarity = float(design_similarity)
        self.bands = BandIndex(signatures, num_bands, rows_per_band)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        db: TransactionDatabase,
        num_hashes: int = 128,
        num_bands: int = 32,
        rows_per_band: int = 2,
        seed: int = 0,
        design_similarity: Optional[float] = None,
    ) -> "SketchIndex":
        """Sign ``db`` and build the band index over it.

        ``design_similarity=None`` calibrates it from the signed data
        (see :func:`calibrate_design_similarity`).
        """
        hasher = SuperMinHasher(num_hashes, db.universe_size, seed)
        with span("sketch.sign", transactions=len(db), num_hashes=num_hashes):
            signatures = hasher.sign_batch(db)
        if design_similarity is None:
            design_similarity = calibrate_design_similarity(signatures)
        return cls(hasher, signatures, num_bands, rows_per_band, design_similarity)

    @classmethod
    def from_arrays(
        cls,
        signatures: np.ndarray,
        universe_size: int,
        num_bands: int,
        rows_per_band: int,
        seed: int,
        design_similarity: float,
    ) -> "SketchIndex":
        """Rehydrate from persisted arrays (band buckets are rebuilt)."""
        hasher = SuperMinHasher(int(signatures.shape[1]), universe_size, seed)
        return cls(hasher, signatures, num_bands, rows_per_band, design_similarity)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    @property
    def num_transactions(self) -> int:
        """Number of signed transactions (rows of the signature matrix)."""
        return int(self.signatures.shape[0])

    def probe(
        self,
        target: Union[Sequence[int], np.ndarray],
        target_recall: Optional[float] = None,
    ) -> SketchProbe:
        """Probe the band index for ``target``.

        ``target_recall`` selects how many bands to probe via the S-curve
        at the design similarity; ``None`` uses
        :data:`DEFAULT_TARGET_RECALL`.
        """
        recall = DEFAULT_TARGET_RECALL if target_recall is None else float(target_recall)
        signature = self.hasher.sign(target)
        bands = bands_for_recall(
            recall,
            self.design_similarity,
            self.bands.num_bands,
            self.bands.rows_per_band,
        )
        with span(
            "sketch.probe", bands=bands, target_recall=recall
        ):
            candidates = self.bands.candidates(signature, bands)
        expected = collision_probability(
            self.design_similarity, bands, self.bands.rows_per_band
        )
        return SketchProbe(
            candidates=candidates,
            bands_probed=bands,
            target_recall=recall,
            expected_recall=expected,
            signature=signature,
        )

    def estimate_result_recall(
        self, probe: SketchProbe, kth_tid: Optional[int] = None
    ) -> float:
        """Estimated recall of a finished query.

        For knn results, the sketch-Jaccard between the query and its
        weakest returned neighbour sharpens the S-curve estimate (a
        harder k-th neighbour cannot be *less* likely to collide than the
        design point).  Calibrated for Jaccard-like similarities; for
        other similarity functions this is a heuristic and
        ``guaranteed_optimal`` stays ``False`` regardless.
        """
        similarity = self.design_similarity
        if kth_tid is not None and 0 <= kth_tid < self.num_transactions:
            estimated = SuperMinHasher.estimate_jaccard(
                probe.signature, self.signatures[kth_tid]
            )
            similarity = max(similarity, estimated)
        return collision_probability(
            similarity, probe.bands_probed, self.bands.rows_per_band
        )
