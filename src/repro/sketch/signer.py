"""Vectorised SuperMinHash-style transaction signatures.

The signer implements *one-permutation hashing with rotation
densification* (Li/Owen/Zhang OPH + Shrivastava & Li densification, the
numpy-friendly cousin of Ertl's SuperMinHash): every item receives a
single 64-bit mixed hash that selects a signature bin and a 32-bit slot
value, a whole database is signed with one ``np.minimum.at`` scatter
over its CSR arrays, and empty bins borrow the nearest populated bin to
their right (cyclically) so the collision estimator stays unbiased even
for transactions much smaller than the signature width.

Determinism is part of the contract: signatures depend only on
``(num_hashes, universe_size, seed)`` — never on Python's randomised
``hash()`` or process state — so signatures computed during WAL replay,
on another shard, or in another process are byte-identical.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.data.transaction import TransactionDatabase, as_item_array
from repro.utils.validation import check_positive

__all__ = ["SuperMinHasher", "SIGNATURE_SENTINEL"]

#: Slot value marking a signature bin that no item hashed into.  Slot
#: values are folded modulo ``2**32 - 1`` so a real value can never
#: collide with the sentinel.
SIGNATURE_SENTINEL = np.uint32(0xFFFFFFFF)

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_VALUE_MODULUS = np.uint64(0xFFFFFFFF)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Finalising 64-bit mix (splitmix64); vectorised over uint64 arrays.

    Multiplications wrap modulo 2**64 by design — the errstate guard
    silences numpy's scalar-overflow warning for that intended wraparound.
    """
    with np.errstate(over="ignore"):
        z = (x + _GOLDEN).astype(np.uint64, copy=False)
        z = (z ^ (z >> np.uint64(30))) * _MIX_1
        z = (z ^ (z >> np.uint64(27))) * _MIX_2
        return z ^ (z >> np.uint64(31))


def _densify_rows(signatures: np.ndarray) -> np.ndarray:
    """Fill empty bins by rotation: each hole copies its nearest populated
    neighbour to the right (cyclically).  All-sentinel rows (empty
    transactions) are left untouched.  Operates in place and returns the
    array."""
    holes = signatures == SIGNATURE_SENTINEL
    target = holes.any(axis=1) & ~holes.all(axis=1)
    if not target.any():
        return signatures
    rows = np.nonzero(target)[0]
    work = signatures[rows]
    for _ in range(work.shape[1]):
        empty = work == SIGNATURE_SENTINEL
        if not empty.any():
            break
        donor = np.roll(work, -1, axis=1)
        fill = empty & (donor != SIGNATURE_SENTINEL)
        work[fill] = donor[fill]
    signatures[rows] = work
    return signatures


class SuperMinHasher:
    """Deterministic one-permutation MinHash signer over an item universe.

    Parameters
    ----------
    num_hashes:
        Signature width ``H`` (number of bins / slots per transaction).
    universe_size:
        Number of items ``|U|``; items must lie in ``[0, universe_size)``.
    seed:
        Seed folded into every item hash.  Two hashers constructed with
        equal parameters produce byte-identical signatures in any
        process.
    """

    def __init__(self, num_hashes: int, universe_size: int, seed: int = 0) -> None:
        check_positive(num_hashes, "num_hashes")
        check_positive(universe_size, "universe_size")
        self.num_hashes = int(num_hashes)
        self.universe_size = int(universe_size)
        self.seed = int(seed) & 0xFFFFFFFFFFFFFFFF
        items = np.arange(self.universe_size, dtype=np.uint64)
        base = _splitmix64(items ^ _splitmix64(np.uint64(self.seed) + np.uint64(1)))
        self._bins = (base % np.uint64(self.num_hashes)).astype(np.int64)
        values = _splitmix64(base ^ _splitmix64(np.uint64(self.seed) + np.uint64(2)))
        self._values = (values % _VALUE_MODULUS).astype(np.uint32)

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def sign(self, transaction: Union[Sequence[int], np.ndarray]) -> np.ndarray:
        """Signature of a single transaction as a ``(num_hashes,)`` uint32
        array.  An empty transaction signs to all-sentinel."""
        items = as_item_array(transaction, self.universe_size)
        signature = np.full(self.num_hashes, SIGNATURE_SENTINEL, dtype=np.uint32)
        if items.size:
            np.minimum.at(signature, self._bins[items], self._values[items])
            _densify_rows(signature[np.newaxis, :])
        return signature

    def sign_batch(self, db: TransactionDatabase) -> np.ndarray:
        """Sign every transaction of ``db`` in one vectorised pass.

        Returns a ``(len(db), num_hashes)`` uint32 array whose row ``t``
        equals ``self.sign(db.transaction(t))``.
        """
        if db.universe_size > self.universe_size:
            raise ValueError(
                f"database universe {db.universe_size} exceeds hasher "
                f"universe {self.universe_size}"
            )
        items, indptr = db.csr()
        n = len(db)
        signatures = np.full((n, self.num_hashes), SIGNATURE_SENTINEL, dtype=np.uint32)
        if items.size:
            rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
            flat = rows * self.num_hashes + self._bins[items]
            np.minimum.at(signatures.reshape(-1), flat, self._values[items])
        return _densify_rows(signatures)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimate the Jaccard coefficient of the two signed sets as the
        fraction of agreeing signature slots."""
        a = np.asarray(sig_a)
        b = np.asarray(sig_b)
        if a.shape != b.shape:
            raise ValueError(f"signature shapes differ: {a.shape} vs {b.shape}")
        return float(np.mean(a == b))
