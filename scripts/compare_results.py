"""Compare two result-table directories and report drift.

After a behavioural change, run the benchmarks into a fresh directory and
diff it against the committed ``results/``:

    pytest benchmarks/ --benchmark-only         # writes results/
    python scripts/compare_results.py results_old results

Compares every common ``*.csv`` cell-by-cell, reporting relative drift
above a tolerance; exits non-zero if any table drifted (for CI gates).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Tuple


def parse_csv(path: Path) -> Tuple[List[str], List[List[str]]]:
    """Minimal CSV reader (our tables never contain quoted commas)."""
    lines = path.read_text(encoding="utf-8").strip().splitlines()
    header = lines[0].split(",")
    rows = [line.split(",") for line in lines[1:]]
    return header, rows


def compare_tables(
    old_path: Path, new_path: Path, tolerance: float
) -> List[str]:
    """Return human-readable drift messages for one table pair."""
    old_header, old_rows = parse_csv(old_path)
    new_header, new_rows = parse_csv(new_path)
    problems: List[str] = []
    if old_header != new_header:
        problems.append(
            f"column mismatch: {old_header} -> {new_header}"
        )
        return problems
    if len(old_rows) != len(new_rows):
        problems.append(f"row count {len(old_rows)} -> {len(new_rows)}")
        return problems
    for row_index, (old_row, new_row) in enumerate(zip(old_rows, new_rows)):
        for column, old_cell, new_cell in zip(old_header, old_row, new_row):
            try:
                old_value = float(old_cell)
                new_value = float(new_cell)
            except ValueError:
                if old_cell != new_cell:
                    problems.append(
                        f"row {row_index} [{column}]: {old_cell!r} -> {new_cell!r}"
                    )
                continue
            scale = max(abs(old_value), abs(new_value), 1e-12)
            if abs(old_value - new_value) / scale > tolerance:
                problems.append(
                    f"row {row_index} [{column}]: {old_value:g} -> "
                    f"{new_value:g} "
                    f"({100 * (new_value - old_value) / scale:+.1f}%)"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", type=Path)
    parser.add_argument("new", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative drift to tolerate per numeric cell (default 5%%)",
    )
    args = parser.parse_args(argv)

    old_tables = {p.name: p for p in sorted(args.old.glob("*.csv"))}
    new_tables = {p.name: p for p in sorted(args.new.glob("*.csv"))}
    common = sorted(set(old_tables) & set(new_tables))
    only_old = sorted(set(old_tables) - set(new_tables))
    only_new = sorted(set(new_tables) - set(old_tables))

    drifted = 0
    for name in common:
        problems = compare_tables(
            old_tables[name], new_tables[name], args.tolerance
        )
        if problems:
            drifted += 1
            print(f"DRIFT {name}")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"ok    {name}")
    for name in only_old:
        print(f"gone  {name}")
    for name in only_new:
        print(f"new   {name}")

    print(
        f"\n{len(common)} compared, {drifted} drifted, "
        f"{len(only_old)} removed, {len(only_new)} added"
    )
    return 1 if drifted or only_old else 0


if __name__ == "__main__":
    sys.exit(main())
