"""SIGKILL crash-recovery smoke test for the live index (CI gate).

Spawns a child process that builds a :class:`~repro.live.LiveIndex` and
ingests transactions forever, acknowledging each durable insert on
stdout.  After a number of acknowledgements the parent SIGKILLs the
child — no atexit handlers, no flush — then recovers the index from the
WAL and checks:

1. every acknowledged insert survived (durability of the ack), and
2. recovered query results are byte-identical to a fresh
   :class:`~repro.core.table.SignatureTable` built over the recovered
   logical database (the differential oracle).

With ``--with-faults`` the smoke additionally sweeps a handful of
seeded errfs fault schedules (``repro.faults.run_errfs_schedule``):
each schedule injects deterministic WAL/checkpoint I/O faults and
simulated crashes into a randomized workload, then checks the terminal
state is byte-identical to a replay of exactly the acknowledged ops.

Usage:  python scripts/crash_recovery_smoke.py [--acks N] [--keep DIR]
        [--with-faults] [--fault-seeds N]

Exit code 0 on success, 1 on any violation.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"

_CHILD_SCRIPT = r"""
import sys
import numpy as np
from repro.data.transaction import TransactionDatabase
from repro.core.partitioning import partition_items
from repro.live import LiveIndex

path = sys.argv[1]
rng = np.random.default_rng(7)
rows = [
    np.sort(rng.choice(80, size=int(rng.integers(2, 10)), replace=False))
    for _ in range(100)
]
db = TransactionDatabase(rows, universe_size=80)
scheme = partition_items(db, num_signatures=6, rng=0)
index = LiveIndex.create(path, db, scheme=scheme)
while True:
    size = int(rng.integers(2, 10))
    tid = index.insert(np.sort(rng.choice(80, size=size, replace=False)))
    print(tid, flush=True)
"""


def run_smoke(index_path: Path, acks: int) -> int:
    """Run one kill-and-recover cycle; returns the number of failures."""
    import numpy as np

    from repro.core.search import SignatureTableSearcher
    from repro.core.similarity import get_similarity
    from repro.core.table import SignatureTable
    from repro.live import LiveIndex

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, str(index_path)],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    acknowledged = []
    try:
        for _ in range(acks):
            line = child.stdout.readline()
            if not line:
                print("FAIL: ingest child died before enough acknowledgements")
                return 1
            acknowledged.append(int(line))
    finally:
        child.kill()  # SIGKILL — the crash under test
        child.wait(timeout=60)
    print(f"killed ingest child after {len(acknowledged)} acknowledged inserts")

    failures = 0
    recovered = LiveIndex.recover(index_path)
    try:
        if recovered.delta_size < len(acknowledged):
            print(
                f"FAIL: only {recovered.delta_size} of "
                f"{len(acknowledged)} acknowledged inserts survived"
            )
            failures += 1
        else:
            print(
                f"ok: {recovered.delta_size} delta rows recovered "
                f"(>= {len(acknowledged)} acknowledged)"
            )

        similarity = get_similarity("match_ratio")
        db = recovered.logical_db()
        oracle = SignatureTableSearcher(
            SignatureTable.build(db, recovered.scheme), db
        )
        rng = np.random.default_rng(1)
        for query in range(8):
            target = np.sort(rng.choice(80, size=5, replace=False))
            got, _ = recovered.knn(target, similarity, k=5)
            want, _ = oracle.knn(target, similarity, k=5)
            got_pairs = [(n.tid, n.similarity) for n in got]
            want_pairs = [(n.tid, n.similarity) for n in want]
            if got_pairs != want_pairs:
                print(f"FAIL: query {query} diverged from the fresh build")
                print(f"  recovered: {got_pairs}")
                print(f"  oracle:    {want_pairs}")
                failures += 1
        if failures == 0:
            print("ok: recovered results byte-identical to a fresh build")
    finally:
        recovered.close()
    return failures


def run_fault_schedules(root: Path, num_seeds: int) -> int:
    """Sweep seeded errfs chaos schedules; returns the number of failures."""
    from repro.faults import run_errfs_schedule

    failures = 0
    injected = 0
    for seed in range(num_seeds):
        summary = run_errfs_schedule(seed, root / f"seed-{seed:04d}")
        injected += summary.faults_injected
        if not summary.verified:
            print(f"FAIL: fault schedule seed={seed}: {summary.mismatch}")
            print(f"  plan: {summary.fault_plan}")
            failures += 1
    if failures == 0:
        print(
            f"ok: {num_seeds} seeded fault schedules verified "
            f"({injected} faults injected), terminal state matched the "
            f"acknowledged-op replay every time"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--acks",
        type=int,
        default=25,
        help="acknowledged inserts to read before SIGKILL (default 25)",
    )
    parser.add_argument(
        "--keep",
        metavar="DIR",
        default=None,
        help="run in DIR and keep it afterwards (default: fresh tempdir)",
    )
    parser.add_argument(
        "--with-faults",
        action="store_true",
        help="also sweep seeded errfs fault-injection schedules and "
        "verify exactly-once recovery under each",
    )
    parser.add_argument(
        "--fault-seeds",
        type=int,
        default=16,
        metavar="N",
        help="fault schedules to sweep with --with-faults (default 16)",
    )
    args = parser.parse_args(argv)
    if str(SRC_DIR) not in sys.path:
        sys.path.insert(0, str(SRC_DIR))

    if args.keep is not None:
        workroot = Path(args.keep)
        failures = run_smoke(workroot / "crash-smoke-idx", args.acks)
        if args.with_faults:
            failures += run_fault_schedules(
                workroot / "fault-smoke", args.fault_seeds
            )
    else:
        workdir = tempfile.mkdtemp(prefix="repro-crash-smoke-")
        try:
            failures = run_smoke(Path(workdir) / "idx", args.acks)
            if args.with_faults:
                failures += run_fault_schedules(
                    Path(workdir) / "faults", args.fault_seeds
                )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    print("PASS" if failures == 0 else f"FAIL ({failures} violations)")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
