"""Print a one-screen summary of the benchmark result tables.

Reads ``results/*.csv`` (or any directory given as argument) and prints
the headline number for each experiment — the quick way to sanity-check a
fresh benchmark run against EXPERIMENTS.md.

Usage:  python scripts/summarize_results.py [results_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional


def read_rows(path: Path) -> List[Dict[str, str]]:
    lines = path.read_text(encoding="utf-8").strip().splitlines()
    header = lines[0].split(",")
    return [dict(zip(header, line.split(","))) for line in lines[1:]]


def last_float(rows: List[Dict[str, str]], column: str) -> Optional[float]:
    for row in reversed(rows):
        value = row.get(column, "")
        try:
            return float(value)
        except ValueError:
            continue
    return None


def summarise(directory: Path) -> List[str]:
    lines: List[str] = []

    def add(name: str, text: str) -> None:
        lines.append(f"{name:<32s} {text}")

    for figure, label in [
        ("fig06_pruning_hamming", "hamming"),
        ("fig09_pruning_matchratio", "match-ratio"),
        ("fig12_pruning_cosine", "cosine"),
    ]:
        path = directory / f"{figure}.csv"
        if path.exists():
            rows = read_rows(path)
            columns = [c for c in rows[0] if c.endswith("prune%")]
            best = last_float(rows, columns[-1])
            add(figure, f"pruning at largest D, max K ({label}): {best:.1f}%")

    for figure in [
        "fig07_accuracy_hamming",
        "fig10_accuracy_matchratio",
        "fig13_accuracy_cosine",
    ]:
        path = directory / f"{figure}.csv"
        if path.exists():
            rows = read_rows(path)
            columns = [c for c in rows[0] if c.endswith("acc%")]
            add(figure, f"accuracy at max budget, max K: {last_float(rows, columns[-1]):.1f}%")

    for figure in [
        "fig08_txnsize_hamming",
        "fig11_txnsize_matchratio",
        "fig14_txnsize_cosine",
    ]:
        path = directory / f"{figure}.csv"
        if path.exists():
            rows = read_rows(path)
            first = float(rows[0]["accuracy%"])
            last = float(rows[-1]["accuracy%"])
            add(figure, f"accuracy T=min -> T=max: {first:.1f}% -> {last:.1f}%")

    path = directory / "table1_inverted_index.csv"
    if path.exists():
        rows = read_rows(path)
        add(
            "table1_inverted_index",
            f"access at T=max: {float(rows[-1]['transactions accessed %']):.1f}% "
            f"of transactions, {float(rows[-1]['pages touched %']):.1f}% of pages",
        )

    for name in sorted(directory.glob("ablation_*.csv")):
        rows = read_rows(name)
        add(name.stem, f"{len(rows)} rows")
    for name in sorted(directory.glob("ext_*.csv")):
        rows = read_rows(name)
        add(name.stem, f"{len(rows)} rows")
    return lines


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    directory = Path(args[0]) if args else Path("results")
    if not directory.exists():
        print(f"error: {directory} does not exist", file=sys.stderr)
        return 2
    lines = summarise(directory)
    if not lines:
        print(f"no result tables found in {directory}", file=sys.stderr)
        return 1
    print(f"Summary of {directory}:")
    for line in lines:
        print(" ", line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
