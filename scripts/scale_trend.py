"""One-off medium/paper-scale trend run for EXPERIMENTS.md.

Runs the Figure 6/7 experiments at larger database sizes than the quick
benchmark profile (adjustable), to document that the paper's headline
trends strengthen with scale.  Results land in ``results/scale_trend_*``.

Usage:  python scripts/scale_trend.py [--sizes 100000 200000] [--queries 60]
"""

import argparse
import sys
import time
from pathlib import Path

from repro.core.similarity import MatchRatioSimilarity
from repro.eval.harness import (
    ExperimentContext,
    run_accuracy_vs_termination,
    run_pruning_vs_db_size,
)

RESULTS = Path(__file__).resolve().parent.parent / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[100_000, 200_000]
    )
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument("--ks", type=int, nargs="+", default=[13, 15])
    args = parser.parse_args(argv)

    ctx = ExperimentContext(
        "quick",
        db_sizes=list(args.sizes),
        large_spec=f"T10.I6.D{max(args.sizes)}",
        txn_size_db=max(args.sizes),
        ks=list(args.ks),
        default_k=max(args.ks),
        num_queries=args.queries,
    )
    similarity = MatchRatioSimilarity()

    started = time.perf_counter()
    pruning = run_pruning_vs_db_size(similarity, ctx)
    pruning.notes.append(f"scale-trend run, sizes={args.sizes}")
    pruning.save(RESULTS, "scale_trend_pruning")
    print(pruning.to_text())

    accuracy = run_accuracy_vs_termination(similarity, ctx)
    accuracy.notes.append(f"scale-trend run, spec={ctx.profile['large_spec']}")
    accuracy.save(RESULTS, "scale_trend_accuracy")
    print(accuracy.to_text())
    print(f"total {time.perf_counter() - started:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
